//! Folding the event stream into per-proxy metric families.
//!
//! [`MetricsProbe`] is a [`Probe`] that turns the 13 [`SimEvent`]
//! variants into named counter/gauge/histogram families in an
//! [`adc_metrics::Registry`], keyed by proxy id: hops-to-resolution and
//! resolution-latency histograms, forward/loop/origin-terminate
//! counters, and live table-occupancy gauges whose distribution is
//! additionally sampled into histograms on the convergence cadence
//! (every [`MetricsProbe::with_cadence`] completed requests).
//!
//! Attribution caveat: flow-level events ([`SimEvent::RequestCompleted`])
//! carry no proxy id, so hit flows are attributed to the proxy whose
//! [`SimEvent::LocalHit`] for the same object was seen most recently —
//! exact when flows for an object do not interleave, and off by at most
//! the interleaving window when they do. Miss flows (origin-served) land
//! in the [`CLUSTER`] slot.
//!
//! Everything here is deterministic (ordered maps, no clocks beyond the
//! probe's own `tick`), so two same-seed runs produce byte-identical
//! [`RegistrySnapshot`]s — and byte-identical Prometheus text.

use crate::event::{SimEvent, TableLevel};
use crate::probe::Probe;
use adc_metrics::registry::CLUSTER;
use adc_metrics::{Registry, RegistrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Requests served from a proxy's local store, per serving proxy.
pub const LOCAL_HITS: &str = "adc_local_hits_total";
/// Misses forwarded to the peer the mapping tables named.
pub const FORWARDS_LEARNED: &str = "adc_forwards_learned_total";
/// Misses forwarded to a random peer (no table entry).
pub const FORWARDS_RANDOM: &str = "adc_forwards_random_total";
/// Requests that revisited a proxy and were sent to the origin.
pub const LOOPS_DETECTED: &str = "adc_loops_detected_total";
/// Requests that exhausted the hop limit and were sent to the origin.
pub const HOP_LIMIT: &str = "adc_hop_limit_total";
/// `THIS`-mapped objects whose data was missing; fetched from the origin.
pub const ORIGIN_THIS_MISS: &str = "adc_origin_this_miss_total";
/// Remote-owner adoptions learned from backwarded replies.
pub const BACKWARD_ADOPTIONS: &str = "adc_backward_adoptions_total";
/// Entries moved between mapping tables (promotions plus demotions).
pub const TABLE_MIGRATIONS: &str = "adc_table_migrations_total";
/// Objects admitted into a proxy's local store.
pub const CACHE_INSERTS: &str = "adc_cache_inserts_total";
/// Objects evicted from a proxy's local store.
pub const CACHE_EVICTS: &str = "adc_cache_evicts_total";
/// Replies that matched no pending request and were dropped.
pub const REPLIES_ORPHANED: &str = "adc_replies_orphaned_total";
/// Workload requests injected (cluster-wide, [`CLUSTER`] slot).
pub const REQUESTS_INJECTED: &str = "adc_requests_injected_total";
/// Flows completed (cluster-wide, [`CLUSTER`] slot).
pub const REQUESTS_COMPLETED: &str = "adc_requests_completed_total";
/// Completed flows served from some proxy cache ([`CLUSTER`] slot).
pub const REQUEST_HITS: &str = "adc_request_hits_total";
/// Live single-table occupancy gauge, per proxy.
pub const TABLE_SINGLE: &str = "adc_table_single";
/// Live multiple-table occupancy gauge, per proxy.
pub const TABLE_MULTIPLE: &str = "adc_table_multiple";
/// Live caching-table occupancy gauge, per proxy.
pub const TABLE_CACHING: &str = "adc_table_caching";
/// Live stored-object count gauge, per proxy.
pub const CACHED_OBJECTS: &str = "adc_cached_objects";
/// Hops-to-resolution histogram; hit flows keyed by serving proxy,
/// origin-served flows in the [`CLUSTER`] slot.
pub const HOPS: &str = "adc_hops";
/// Resolution-latency histogram (microseconds), keyed like [`HOPS`].
pub const RESOLUTION_LATENCY_US: &str = "adc_resolution_latency_us";

/// `(live gauge, sampled-occupancy histogram)` pairs recorded on the
/// cadence tick.
const OCCUPANCY_FAMILIES: [(&str, &str); 4] = [
    (TABLE_SINGLE, "adc_table_single_occupancy"),
    (TABLE_MULTIPLE, "adc_table_multiple_occupancy"),
    (TABLE_CACHING, "adc_table_caching_occupancy"),
    (CACHED_OBJECTS, "adc_cached_objects_occupancy"),
];

/// Default occupancy-sampling cadence in completed requests; matches the
/// convergence sampler's `sample_every` default.
pub const DEFAULT_CADENCE: u64 = 5000;

/// A [`Probe`] that folds [`SimEvent`]s into per-proxy metric families.
///
/// See the [module docs](self) for the family catalogue and the hit
/// attribution caveat.
#[derive(Debug, Clone)]
pub struct MetricsProbe {
    registry: Registry,
    now_us: u64,
    completed: u64,
    cadence: u64,
    /// object -> proxy that most recently served it from local store.
    last_server: BTreeMap<u64, u32>,
}

impl Default for MetricsProbe {
    fn default() -> Self {
        MetricsProbe::new()
    }
}

impl MetricsProbe {
    /// Creates a probe sampling occupancy every [`DEFAULT_CADENCE`]
    /// completed requests.
    pub fn new() -> Self {
        MetricsProbe::with_cadence(DEFAULT_CADENCE)
    }

    /// Creates a probe sampling table occupancy into histograms every
    /// `cadence` completed requests (0 disables occupancy sampling).
    pub fn with_cadence(cadence: u64) -> Self {
        MetricsProbe {
            registry: Registry::new(),
            now_us: 0,
            completed: 0,
            cadence,
            last_server: BTreeMap::new(),
        }
    }

    /// The accumulated registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consumes the probe, yielding the registry (for merging shards).
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    /// An owned, sorted snapshot of every family.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Builds the per-proxy summary report for `SimReport` embedding.
    pub fn report(&self) -> MetricsReport {
        MetricsReport::from_registry(&self.registry)
    }

    /// Records a completed flow with an exact serving-proxy attribution.
    ///
    /// Equivalent to emitting [`SimEvent::RequestCompleted`] except that
    /// the hit slot is `server` (the proxy named by the reply's
    /// `served_from`) instead of the most-recent [`SimEvent::LocalHit`]
    /// heuristic. The sharded executor folds completions on the
    /// coordinator, where the serving proxy is known exactly; in
    /// sequential injection the two attributions coincide (flows never
    /// interleave), so merged sharded registries stay byte-identical to
    /// a single-threaded run. `server = None` (origin-served) lands in
    /// the [`CLUSTER`] slot.
    pub fn record_completion(
        &mut self,
        now_us: u64,
        hit: bool,
        hops: u32,
        start_us: u64,
        server: Option<u32>,
    ) {
        self.now_us = now_us;
        let r = &mut self.registry;
        r.counter_add(REQUESTS_COMPLETED, CLUSTER, 1);
        let slot = if hit {
            r.counter_add(REQUEST_HITS, CLUSTER, 1);
            server.unwrap_or(CLUSTER)
        } else {
            CLUSTER
        };
        r.histogram_record(HOPS, slot, u64::from(hops));
        r.histogram_record(
            RESOLUTION_LATENCY_US,
            slot,
            self.now_us.saturating_sub(start_us),
        );
        self.completed += 1;
        if self.cadence > 0 && self.completed.is_multiple_of(self.cadence) {
            self.sample_occupancy();
        }
    }

    /// Immediately records the current table-occupancy gauges into their
    /// histogram families, regardless of the cadence.
    ///
    /// The sharded executor drives occupancy sampling from the
    /// coordinator's completion count (the cluster-wide cadence), since
    /// per-shard probes never observe completions.
    pub fn sample_occupancy_now(&mut self) {
        self.sample_occupancy();
    }

    /// Records current table-occupancy gauges into their histogram
    /// families (one observation per known proxy and family).
    fn sample_occupancy(&mut self) {
        // Collect first: the registry cannot be iterated and mutated at
        // once. A handful of gauges, so the Vec is tiny.
        let live: Vec<(usize, u32, i64)> = self
            .registry
            .gauges()
            .filter_map(|(metric, proxy, value)| {
                OCCUPANCY_FAMILIES
                    .iter()
                    .position(|&(gauge, _)| gauge == metric)
                    .map(|slot| (slot, proxy, value))
            })
            .collect();
        for (slot, proxy, value) in live {
            // Occupancy gauges never go negative (paired insert/evict
            // events), but clamp instead of trusting that here.
            let value = u64::try_from(value).unwrap_or(0);
            self.registry
                .histogram_record(OCCUPANCY_FAMILIES[slot].1, proxy, value);
        }
    }
}

impl Probe for MetricsProbe {
    const ENABLED: bool = true;

    #[inline]
    fn tick(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    fn emit(&mut self, event: SimEvent) {
        let r = &mut self.registry;
        match event {
            SimEvent::RequestInjected { .. } => {
                r.counter_add(REQUESTS_INJECTED, CLUSTER, 1);
            }
            SimEvent::RequestCompleted {
                object,
                hit,
                hops,
                start_us,
                ..
            } => {
                r.counter_add(REQUESTS_COMPLETED, CLUSTER, 1);
                let slot = if hit {
                    r.counter_add(REQUEST_HITS, CLUSTER, 1);
                    self.last_server.get(&object).copied().unwrap_or(CLUSTER)
                } else {
                    CLUSTER
                };
                r.histogram_record(HOPS, slot, u64::from(hops));
                r.histogram_record(
                    RESOLUTION_LATENCY_US,
                    slot,
                    self.now_us.saturating_sub(start_us),
                );
                self.completed += 1;
                if self.cadence > 0 && self.completed.is_multiple_of(self.cadence) {
                    self.sample_occupancy();
                }
            }
            SimEvent::ForwardLearned { proxy, .. } => {
                r.counter_add(FORWARDS_LEARNED, proxy, 1);
            }
            SimEvent::ForwardRandom { proxy, .. } => {
                r.counter_add(FORWARDS_RANDOM, proxy, 1);
            }
            SimEvent::LoopDetected { proxy, .. } => {
                r.counter_add(LOOPS_DETECTED, proxy, 1);
            }
            SimEvent::HopLimitHit { proxy, .. } => {
                r.counter_add(HOP_LIMIT, proxy, 1);
            }
            SimEvent::OriginThisMiss { proxy, .. } => {
                r.counter_add(ORIGIN_THIS_MISS, proxy, 1);
            }
            SimEvent::LocalHit { proxy, object } => {
                r.counter_add(LOCAL_HITS, proxy, 1);
                self.last_server.insert(object, proxy);
            }
            SimEvent::BackwardAdoption { proxy, .. } => {
                r.counter_add(BACKWARD_ADOPTIONS, proxy, 1);
            }
            SimEvent::TableMigration {
                proxy, from, to, ..
            } => {
                r.counter_add(TABLE_MIGRATIONS, proxy, 1);
                if let Some(gauge) = table_gauge(from) {
                    r.gauge_add(gauge, proxy, -1);
                }
                if let Some(gauge) = table_gauge(to) {
                    r.gauge_add(gauge, proxy, 1);
                }
            }
            SimEvent::CacheInsert { proxy, .. } => {
                r.counter_add(CACHE_INSERTS, proxy, 1);
                r.gauge_add(CACHED_OBJECTS, proxy, 1);
            }
            SimEvent::CacheEvict { proxy, .. } => {
                r.counter_add(CACHE_EVICTS, proxy, 1);
                r.gauge_add(CACHED_OBJECTS, proxy, -1);
            }
            SimEvent::ReplyOrphaned { proxy, .. } => {
                r.counter_add(REPLIES_ORPHANED, proxy, 1);
            }
        }
    }
}

/// The live-occupancy gauge family for a table level, if it has one.
fn table_gauge(level: TableLevel) -> Option<&'static str> {
    match level {
        TableLevel::Out => None,
        TableLevel::Single => Some(TABLE_SINGLE),
        TableLevel::Multiple => Some(TABLE_MULTIPLE),
        TableLevel::Caching => Some(TABLE_CACHING),
    }
}

/// Per-proxy histogram summary derived from a [`Registry`], embedded in
/// the simulator's `SimReport`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyMetricsSummary {
    /// Proxy id, or [`CLUSTER`] for the origin-served flow slot.
    pub proxy: u32,
    /// Requests this proxy served from its local store.
    pub local_hits: u64,
    /// Misses it forwarded (learned plus random).
    pub forwards: u64,
    /// Flows attributed to this proxy in the hops histogram.
    pub flows_observed: u64,
    /// Median hops-to-resolution (log2-bucket upper edge), 0 when empty.
    pub hops_p50: u64,
    /// 99th-percentile hops-to-resolution, 0 when empty.
    pub hops_p99: u64,
    /// Median resolution latency in microseconds, 0 when empty.
    pub latency_p50_us: u64,
    /// 99th-percentile resolution latency in microseconds, 0 when empty.
    pub latency_p99_us: u64,
}

/// The metrics half of an observed run: the full sorted snapshot plus
/// per-proxy histogram summaries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every family, sorted by `(metric, proxy)`.
    pub snapshot: RegistrySnapshot,
    /// One summary per proxy id appearing in any family (the
    /// [`CLUSTER`] slot last, when present).
    pub per_proxy: Vec<ProxyMetricsSummary>,
}

impl MetricsReport {
    /// Summarizes `registry` into per-proxy rows plus a full snapshot.
    pub fn from_registry(registry: &Registry) -> Self {
        let mut ids = registry.proxies();
        let has_cluster = registry
            .counters()
            .map(|(_, p, _)| p)
            .chain(registry.histograms().map(|(_, p, _)| p))
            .any(|p| p == CLUSTER);
        if has_cluster {
            ids.push(CLUSTER);
        }
        let per_proxy = ids
            .into_iter()
            .map(|proxy| {
                let hist_q = |name, q| {
                    registry
                        .histogram(name, proxy)
                        .and_then(|h| h.quantile(q))
                        .unwrap_or(0)
                };
                ProxyMetricsSummary {
                    proxy,
                    local_hits: registry.counter(LOCAL_HITS, proxy),
                    forwards: registry.counter(FORWARDS_LEARNED, proxy)
                        + registry.counter(FORWARDS_RANDOM, proxy),
                    flows_observed: registry
                        .histogram(HOPS, proxy)
                        .map(|h| h.count())
                        .unwrap_or(0),
                    hops_p50: hist_q(HOPS, 0.5),
                    hops_p99: hist_q(HOPS, 0.99),
                    latency_p50_us: hist_q(RESOLUTION_LATENCY_US, 0.5),
                    latency_p99_us: hist_q(RESOLUTION_LATENCY_US, 0.99),
                }
            })
            .collect();
        MetricsReport {
            snapshot: registry.snapshot(),
            per_proxy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit_flow(probe: &mut MetricsProbe, proxy: u32, object: u64, hops: u32, latency_us: u64) {
        probe.emit(SimEvent::RequestInjected {
            client: 0,
            seq: 0,
            object,
        });
        probe.emit(SimEvent::LocalHit { proxy, object });
        probe.tick(1_000 + latency_us);
        probe.emit(SimEvent::RequestCompleted {
            client: 0,
            seq: 0,
            object,
            hit: true,
            hops,
            start_us: 1_000,
        });
    }

    #[test]
    fn counters_key_by_proxy_and_hits_attribute_to_server() {
        let mut p = MetricsProbe::with_cadence(0);
        hit_flow(&mut p, 3, 77, 2, 40);
        hit_flow(&mut p, 3, 77, 4, 60);
        hit_flow(&mut p, 5, 99, 1, 10);
        let r = p.registry();
        assert_eq!(r.counter(LOCAL_HITS, 3), 2);
        assert_eq!(r.counter(LOCAL_HITS, 5), 1);
        assert_eq!(r.counter(REQUESTS_COMPLETED, CLUSTER), 3);
        assert_eq!(r.counter(REQUEST_HITS, CLUSTER), 3);
        let hops3 = r.histogram(HOPS, 3).expect("proxy 3 hops recorded");
        assert_eq!(hops3.count(), 2);
        assert_eq!(hops3.sum(), 6);
        let lat5 = r
            .histogram(RESOLUTION_LATENCY_US, 5)
            .expect("proxy 5 latency recorded");
        assert_eq!(lat5.sum(), 10);
    }

    #[test]
    fn origin_served_flows_land_in_cluster_slot() {
        let mut p = MetricsProbe::with_cadence(0);
        p.tick(500);
        p.emit(SimEvent::RequestCompleted {
            client: 1,
            seq: 0,
            object: 42,
            hit: false,
            hops: 6,
            start_us: 100,
        });
        let r = p.registry();
        assert_eq!(r.counter(REQUEST_HITS, CLUSTER), 0);
        assert_eq!(
            r.histogram(HOPS, CLUSTER).map(|h| h.count()),
            Some(1),
            "miss hops go to the cluster slot"
        );
        assert_eq!(
            r.histogram(RESOLUTION_LATENCY_US, CLUSTER).map(|h| h.sum()),
            Some(400)
        );
    }

    #[test]
    fn table_migrations_move_occupancy_gauges() {
        let mut p = MetricsProbe::with_cadence(0);
        let mig = |from, to| SimEvent::TableMigration {
            proxy: 2,
            object: 9,
            from,
            to,
        };
        p.emit(mig(TableLevel::Out, TableLevel::Single));
        p.emit(mig(TableLevel::Single, TableLevel::Multiple));
        p.emit(mig(TableLevel::Multiple, TableLevel::Caching));
        let r = p.registry();
        assert_eq!(r.gauge(TABLE_SINGLE, 2), 0);
        assert_eq!(r.gauge(TABLE_MULTIPLE, 2), 0);
        assert_eq!(r.gauge(TABLE_CACHING, 2), 1);
        assert_eq!(r.counter(TABLE_MIGRATIONS, 2), 3);
        p.emit(SimEvent::CacheInsert {
            proxy: 2,
            object: 9,
        });
        p.emit(SimEvent::CacheEvict {
            proxy: 2,
            object: 9,
        });
        assert_eq!(p.registry().gauge(CACHED_OBJECTS, 2), 0);
    }

    #[test]
    fn cadence_samples_occupancy_histograms() {
        let mut p = MetricsProbe::with_cadence(2);
        p.emit(SimEvent::TableMigration {
            proxy: 0,
            object: 1,
            from: TableLevel::Out,
            to: TableLevel::Single,
        });
        for seq in 0..4 {
            p.emit(SimEvent::RequestCompleted {
                client: 0,
                seq,
                object: 1,
                hit: false,
                hops: 1,
                start_us: 0,
            });
        }
        // 4 completions at cadence 2 -> two samples of the gauge (1).
        let h = p
            .registry()
            .histogram("adc_table_single_occupancy", 0)
            .expect("occupancy sampled");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2);
    }

    #[test]
    fn report_summarizes_per_proxy() {
        let mut p = MetricsProbe::with_cadence(0);
        hit_flow(&mut p, 1, 7, 2, 100);
        p.emit(SimEvent::ForwardLearned {
            proxy: 1,
            object: 8,
            to: 2,
        });
        p.tick(0);
        p.emit(SimEvent::RequestCompleted {
            client: 0,
            seq: 1,
            object: 8,
            hit: false,
            hops: 5,
            start_us: 0,
        });
        let report = p.report();
        assert_eq!(report.per_proxy.len(), 2, "proxy 1 and the cluster slot");
        let one = &report.per_proxy[0];
        assert_eq!((one.proxy, one.local_hits, one.forwards), (1, 1, 1));
        assert_eq!(one.flows_observed, 1);
        assert!(one.hops_p50 >= 2, "log2 upper edge of 2 is 3");
        let last = report.per_proxy.last().expect("cluster row");
        assert_eq!(last.proxy, CLUSTER);
        assert_eq!(last.flows_observed, 1);
        // The snapshot renders as valid Prometheus text.
        adc_metrics::validate_prometheus(&report.snapshot.to_prometheus())
            .expect("snapshot renders valid exposition text");
    }

    #[test]
    fn record_completion_matches_event_path_on_exact_attribution() {
        // Event path: hit attributed via last LocalHit for the object.
        let mut via_event = MetricsProbe::with_cadence(0);
        hit_flow(&mut via_event, 4, 11, 3, 250);
        // Direct path: same flow recorded with the exact server.
        let mut direct = MetricsProbe::with_cadence(0);
        direct.emit(SimEvent::RequestInjected {
            client: 0,
            seq: 0,
            object: 11,
        });
        direct.emit(SimEvent::LocalHit {
            proxy: 4,
            object: 11,
        });
        direct.record_completion(1_250, true, 3, 1_000, Some(4));
        assert_eq!(
            via_event.snapshot().to_prometheus(),
            direct.snapshot().to_prometheus(),
            "exact attribution must reproduce the heuristic when flows do not interleave"
        );
        // Origin-served flows land in the cluster slot either way.
        let mut miss = MetricsProbe::with_cadence(0);
        miss.record_completion(500, false, 6, 100, None);
        let r = miss.registry();
        assert_eq!(r.counter(REQUEST_HITS, CLUSTER), 0);
        assert_eq!(r.histogram(HOPS, CLUSTER).map(|h| h.count()), Some(1));
    }

    #[test]
    fn sample_occupancy_now_records_outside_cadence() {
        let mut p = MetricsProbe::with_cadence(0);
        p.emit(SimEvent::TableMigration {
            proxy: 0,
            object: 1,
            from: TableLevel::Out,
            to: TableLevel::Single,
        });
        p.sample_occupancy_now();
        p.sample_occupancy_now();
        let h = p
            .registry()
            .histogram("adc_table_single_occupancy", 0)
            .expect("occupancy sampled on demand");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2);
    }

    #[test]
    fn probe_is_deterministic_across_replays() {
        let run = || {
            let mut p = MetricsProbe::new();
            for i in 0..200u64 {
                hit_flow(&mut p, (i % 5) as u32, i % 17, (i % 7) as u32, i);
            }
            p.snapshot().to_prometheus()
        };
        assert_eq!(run(), run());
    }
}
