//! Minimal JSON helpers.
//!
//! The workspace's vendored `serde` is a no-op stub (derives expand to
//! nothing), so all JSON in this repo is hand-rolled. This module keeps
//! the escaping in one place and provides a small validating parser used
//! by tests and CI to assert that exported files are well-formed.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (including the quotes),
/// escaping the characters JSON requires.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `input` is one syntactically valid JSON value (object,
/// array, string, number, `true`, `false` or `null`) with nothing but
/// whitespace after it. Returns a position-annotated error otherwise.
///
/// This is a validator, not a deserializer: it builds no tree and
/// allocates nothing, which is all the exporter tests and the CI JSONL
/// check need.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-') | Some(b'0'..=b'9') => number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte {:?} at {}", b as char, *pos)),
        None => Err(format!("unexpected end of input at {}", *pos)),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expected) {
        *pos += expected.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("invalid \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(b'0'..=b'9') = bytes.get(*pos) {
        saw_digit = true;
        *pos += 1;
    }
    if !saw_digit {
        return Err(format!("expected digit at byte {}", *pos));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = false;
        while let Some(b'0'..=b'9') = bytes.get(*pos) {
            frac = true;
            *pos += 1;
        }
        if !frac {
            return Err(format!("expected fraction digit at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = false;
        while let Some(b'0'..=b'9') = bytes.get(*pos) {
            exp = true;
            *pos += 1;
        }
        if !exp {
            return Err(format!("expected exponent digit at byte {}", *pos));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert!(validate_json(&out).is_ok());
    }

    #[test]
    fn accepts_valid_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#"{"t":1,"event":"local_hit","proxy":0,"object":42}"#,
            r#"{"traceEvents":[{"ph":"i","ts":0.5,"args":{}}]} "#,
            r#"  [1, "two", {"three": [null, false]}]  "#,
        ] {
            assert!(validate_json(ok).is_ok(), "rejected valid: {ok}");
        }
    }

    #[test]
    fn rejects_invalid_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "{} {}",
            "{\"a\":1,}",
            "[1] trailing",
        ] {
            assert!(validate_json(bad).is_err(), "accepted invalid: {bad}");
        }
    }
}
