//! Convergence sampling: do the proxies agree on who owns each object?
//!
//! The paper's central claim is that ADC *self-organizes*: backwarding
//! alone drives every proxy's mapping tables toward one agreed owner per
//! object. The simulator periodically snapshots each agent's owner hint
//! for a fixed set of hot objects and feeds the snapshots to a
//! [`ConvergenceTracker`], which turns them into three time series:
//!
//! - **agreement** — fraction of tracked objects whose cluster-wide
//!   mapping is *coherent*: every proxy names an owner, and every named
//!   owner names itself (it claims the object). This covers both
//!   converged shapes ADC produces — one owner everyone points at, and a
//!   hot object replicated at several proxies, each serving it locally —
//!   while stale chains (a proxy pointing at a peer that no longer
//!   claims the object) count as disagreement;
//! - **remaps** — `(object, proxy)` pairs whose owner changed from one
//!   known owner to a different one since the previous sample;
//! - **churn** — `(object, proxy)` pairs whose hint appeared or
//!   disappeared since the previous sample.
//!
//! Under stable workload the agreement series should trend upward — the
//! observable form of Figures 11–15's improving hit rates.

use adc_metrics::Series;
// Ordered map: keyed access only today, but the tracker feeds
// deterministic reports and costs nothing to keep hasher-free.
use std::collections::BTreeMap;

/// Settings for the periodic convergence sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceConfig {
    /// Take one snapshot every `sample_every` completed requests.
    pub sample_every: u64,
    /// Track the `top_k` most-requested objects (hot set), chosen from
    /// injected-request counts with ties broken by object id.
    pub top_k: usize,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            sample_every: 5_000,
            top_k: 128,
        }
    }
}

/// Folds owner-hint snapshots into agreement/remap/churn series.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    prev: BTreeMap<u64, Vec<Option<u32>>>,
    agreement: Series,
    remaps: Series,
    churn: Series,
    total_remaps: u64,
    total_churn: u64,
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ConvergenceTracker {
            prev: BTreeMap::new(),
            agreement: Series::new("convergence_agreement"),
            remaps: Series::new("convergence_remaps"),
            churn: Series::new("convergence_churn"),
            total_remaps: 0,
            total_churn: 0,
        }
    }

    /// Ingests one snapshot taken at x-coordinate `x` (typically the
    /// completed-request count). Each entry is an object id plus one
    /// owner hint per proxy, in a fixed proxy order.
    pub fn sample(&mut self, x: f64, snapshot: &[(u64, Vec<Option<u32>>)]) {
        let mut agreed = 0usize;
        let mut remaps = 0u64;
        let mut churn = 0u64;
        for (object, hints) in snapshot {
            // Coherent mapping: every proxy has a hint, and every hinted
            // owner claims the object itself (its own hint is itself).
            let coherent = !hints.is_empty()
                && hints.iter().all(|h| match h {
                    Some(q) => hints
                        .get(*q as usize)
                        .is_some_and(|owner| *owner == Some(*q)),
                    None => false,
                });
            if coherent {
                agreed += 1;
            }
            if let Some(prev_hints) = self.prev.get(object) {
                for (old, new) in prev_hints.iter().zip(hints) {
                    match (old, new) {
                        (Some(a), Some(b)) if a != b => remaps += 1,
                        (Some(_), None) | (None, Some(_)) => churn += 1,
                        _ => {}
                    }
                }
            }
        }
        let fraction = if snapshot.is_empty() {
            0.0
        } else {
            agreed as f64 / snapshot.len() as f64
        };
        self.agreement.push(x, fraction);
        self.remaps.push(x, remaps as f64);
        self.churn.push(x, churn as f64);
        self.total_remaps += remaps;
        self.total_churn += churn;
        self.prev.clear();
        for (object, hints) in snapshot {
            self.prev.insert(*object, hints.clone());
        }
    }

    /// Number of snapshots ingested so far.
    pub fn samples(&self) -> usize {
        self.agreement.len()
    }

    /// Consumes the tracker into its report.
    pub fn into_report(self) -> ConvergenceReport {
        ConvergenceReport {
            samples: self.agreement.len(),
            agreement: self.agreement,
            remaps: self.remaps,
            churn: self.churn,
            total_remaps: self.total_remaps,
            total_churn: self.total_churn,
        }
    }
}

/// The convergence series of one run, carried in `SimReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceReport {
    /// Per-sample agreement fraction in `[0, 1]`.
    pub agreement: Series,
    /// Per-sample owner remap count.
    pub remaps: Series,
    /// Per-sample hint appear/disappear count.
    pub churn: Series,
    /// Number of snapshots taken.
    pub samples: usize,
    /// Remaps summed over the whole run.
    pub total_remaps: u64,
    /// Churn summed over the whole run.
    pub total_churn: u64,
}

impl ConvergenceReport {
    /// Agreement fraction at the last sample, if any were taken.
    pub fn final_agreement(&self) -> Option<f64> {
        self.agreement.last_y()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default() {
        let cfg = ConvergenceConfig::default();
        assert_eq!(cfg.sample_every, 5_000);
        assert_eq!(cfg.top_k, 128);
    }

    #[test]
    fn agreement_means_every_hint_lands_on_a_claiming_owner() {
        let mut t = ConvergenceTracker::new();
        t.sample(
            1.0,
            &[
                // One owner, everyone points at it: coherent.
                (10, vec![Some(0), Some(0), Some(0)]),
                // Replicated at proxies 0 and 1 (each claims itself),
                // proxy 2 fetches from 0: also coherent.
                (11, vec![Some(0), Some(1), Some(0)]),
                // Stale chain: 0 points at 1 but 1 points back at 0 —
                // neither claims the object.
                (12, vec![Some(1), Some(0), Some(2)]),
                // Incomplete (a proxy has no hint).
                (13, vec![Some(2), None, Some(2)]),
            ],
        );
        let report = t.into_report();
        assert_eq!(report.samples, 1);
        assert_eq!(report.final_agreement(), Some(0.5));
        assert_eq!(report.total_remaps, 0);
        assert_eq!(report.total_churn, 0);
    }

    #[test]
    fn remaps_and_churn_compare_consecutive_samples() {
        let mut t = ConvergenceTracker::new();
        t.sample(
            1.0,
            &[(10, vec![Some(0), None]), (11, vec![Some(1), Some(1)])],
        );
        // Proxy 0 remaps object 10 (0 -> 1); proxy 1 learns it (None -> 1);
        // object 11's owner is forgotten by proxy 0 (Some -> None).
        t.sample(
            2.0,
            &[(10, vec![Some(1), Some(1)]), (11, vec![None, Some(1)])],
        );
        let report = t.into_report();
        assert_eq!(report.total_remaps, 1);
        assert_eq!(report.total_churn, 2);
        assert_eq!(report.remaps.points, vec![(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(report.churn.points, vec![(1.0, 0.0), (2.0, 2.0)]);
        // Second sample: object 10 agreed (owner 1 claims itself),
        // object 11 not (proxy 0 lost its hint).
        assert_eq!(report.final_agreement(), Some(0.5));
    }

    #[test]
    fn empty_snapshot_counts_as_zero_agreement() {
        let mut t = ConvergenceTracker::new();
        t.sample(1.0, &[]);
        assert_eq!(t.samples(), 1);
        assert_eq!(t.into_report().final_agreement(), Some(0.0));
    }
}
