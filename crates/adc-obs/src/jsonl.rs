//! JSON-Lines export of a captured event stream.
//!
//! One event per line, e.g.
//!
//! ```text
//! {"t":1250,"event":"forward_learned","proxy":0,"object":42,"to":3}
//! ```
//!
//! `t` is the emission timestamp in simulated microseconds; `event` is
//! the [`EventKind`] name; the remaining keys are the variant's fields.
//!
//! [`EventKind`]: crate::EventKind

use crate::event::SimEvent;
use crate::json::write_escaped;
use std::fmt::Write as _;
use std::io;

/// Renders one `(timestamp, event)` pair as a JSON object (no trailing
/// newline), appending to `out`.
pub fn write_event_json(out: &mut String, t_us: u64, event: &SimEvent) {
    let _ = write!(out, "{{\"t\":{t_us},\"event\":");
    write_escaped(out, event.kind().name());
    match *event {
        SimEvent::RequestInjected {
            client,
            seq,
            object,
        } => {
            let _ = write!(
                out,
                ",\"client\":{client},\"seq\":{seq},\"object\":{object}"
            );
        }
        SimEvent::RequestCompleted {
            client,
            seq,
            object,
            hit,
            hops,
            start_us,
        } => {
            let _ = write!(
                out,
                ",\"client\":{client},\"seq\":{seq},\"object\":{object},\"hit\":{hit},\"hops\":{hops},\"start_us\":{start_us}"
            );
        }
        SimEvent::ForwardLearned { proxy, object, to }
        | SimEvent::ForwardRandom { proxy, object, to } => {
            let _ = write!(out, ",\"proxy\":{proxy},\"object\":{object},\"to\":{to}");
        }
        SimEvent::HopLimitHit {
            proxy,
            object,
            hops,
        } => {
            let _ = write!(
                out,
                ",\"proxy\":{proxy},\"object\":{object},\"hops\":{hops}"
            );
        }
        SimEvent::BackwardAdoption {
            proxy,
            object,
            owner,
        } => {
            let _ = write!(
                out,
                ",\"proxy\":{proxy},\"object\":{object},\"owner\":{owner}"
            );
        }
        SimEvent::TableMigration {
            proxy,
            object,
            from,
            to,
        } => {
            let _ = write!(out, ",\"proxy\":{proxy},\"object\":{object},\"from\":");
            write_escaped(out, from.name());
            out.push_str(",\"to\":");
            write_escaped(out, to.name());
        }
        SimEvent::LoopDetected { proxy, object }
        | SimEvent::OriginThisMiss { proxy, object }
        | SimEvent::LocalHit { proxy, object }
        | SimEvent::CacheInsert { proxy, object }
        | SimEvent::CacheEvict { proxy, object }
        | SimEvent::ReplyOrphaned { proxy, object } => {
            let _ = write!(out, ",\"proxy\":{proxy},\"object\":{object}");
        }
    }
    out.push('}');
}

/// Writes the captured stream as JSON Lines to `writer`, one event per
/// line, in emission order.
pub fn write_jsonl<W: io::Write>(writer: &mut W, events: &[(u64, SimEvent)]) -> io::Result<()> {
    let mut line = String::with_capacity(128);
    for (t, event) in events {
        line.clear();
        write_event_json(&mut line, *t, event);
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Renders the captured stream as one JSONL string (for tests).
pub fn to_jsonl_string(events: &[(u64, SimEvent)]) -> String {
    let mut out = Vec::new();
    // Invariant: Vec<u8> writes are infallible and the emitter only
    // produces ASCII-escaped JSON. adc-lint: allow(panic)
    write_jsonl(&mut out, events).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSONL output is UTF-8") // adc-lint: allow(panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TableLevel;
    use crate::json::validate_json;

    #[test]
    fn every_variant_renders_valid_json() {
        let events = [
            (
                0,
                SimEvent::RequestInjected {
                    client: 1,
                    seq: 2,
                    object: 3,
                },
            ),
            (
                9,
                SimEvent::RequestCompleted {
                    client: 1,
                    seq: 2,
                    object: 3,
                    hit: false,
                    hops: 4,
                    start_us: 0,
                },
            ),
            (
                1,
                SimEvent::ForwardLearned {
                    proxy: 0,
                    object: 3,
                    to: 2,
                },
            ),
            (
                2,
                SimEvent::ForwardRandom {
                    proxy: 2,
                    object: 3,
                    to: 4,
                },
            ),
            (
                3,
                SimEvent::LoopDetected {
                    proxy: 4,
                    object: 3,
                },
            ),
            (
                3,
                SimEvent::HopLimitHit {
                    proxy: 4,
                    object: 3,
                    hops: 16,
                },
            ),
            (
                4,
                SimEvent::OriginThisMiss {
                    proxy: 4,
                    object: 3,
                },
            ),
            (
                5,
                SimEvent::LocalHit {
                    proxy: 1,
                    object: 3,
                },
            ),
            (
                6,
                SimEvent::BackwardAdoption {
                    proxy: 0,
                    object: 3,
                    owner: 4,
                },
            ),
            (
                7,
                SimEvent::TableMigration {
                    proxy: 0,
                    object: 3,
                    from: TableLevel::Single,
                    to: TableLevel::Multiple,
                },
            ),
            (
                8,
                SimEvent::CacheInsert {
                    proxy: 0,
                    object: 3,
                },
            ),
            (
                8,
                SimEvent::CacheEvict {
                    proxy: 0,
                    object: 7,
                },
            ),
            (
                9,
                SimEvent::ReplyOrphaned {
                    proxy: 2,
                    object: 3,
                },
            ),
        ];
        let jsonl = to_jsonl_string(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            validate_json(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        }
        assert!(lines[0].starts_with(r#"{"t":0,"event":"request_injected""#));
        assert!(lines[2].contains(r#""to":2"#));
        assert!(lines[9].contains(r#""from":"single","to":"multiple""#));
    }
}
