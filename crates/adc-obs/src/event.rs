//! The typed simulation-event taxonomy.
//!
//! Events use **raw identifiers** (`u32` proxies/clients, `u64` objects)
//! rather than the `adc-core` newtypes: this crate sits *below* `adc-core`
//! in the dependency graph (the agent trait takes a [`Probe`] parameter),
//! so it cannot name those types. Emitters call `.raw()` at the call site;
//! the conversion is free.
//!
//! [`Probe`]: crate::Probe

use std::fmt;

/// Which of the three mapping tables (or outside of them) an entry sits
/// in; used by [`SimEvent::TableMigration`] to describe promotion and
/// demotion edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableLevel {
    /// Not tracked in any table (a forgotten entry).
    Out,
    /// The single-table (LRU of once-seen objects).
    Single,
    /// The multiple-table (ordered by average inter-request time).
    Multiple,
    /// The caching table (object data stored locally).
    Caching,
}

impl TableLevel {
    /// Stable lower-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            TableLevel::Out => "out",
            TableLevel::Single => "single",
            TableLevel::Multiple => "multiple",
            TableLevel::Caching => "caching",
        }
    }
}

impl fmt::Display for TableLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured event emitted by an agent or the simulator runner.
///
/// Each variant mirrors exactly one counter increment or state change in
/// the ADC algorithm, so a run's event stream reconciles with its
/// `ProxyStats` totals (there is a property test pinning this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A workload request entered the system.
    RequestInjected {
        /// Issuing client.
        client: u32,
        /// The client's request counter.
        seq: u64,
        /// Requested object.
        object: u64,
    },
    /// A reply reached its client; the flow is complete.
    RequestCompleted {
        /// Issuing client.
        client: u32,
        /// The client's request counter.
        seq: u64,
        /// Requested object.
        object: u64,
        /// Served from some proxy cache (vs. the origin server).
        hit: bool,
        /// Message transfers the flow took end to end.
        hops: u32,
        /// Simulated injection time, microseconds.
        start_us: u64,
    },
    /// A miss was forwarded to the location learned from the tables.
    ForwardLearned {
        /// Forwarding proxy.
        proxy: u32,
        /// Requested object.
        object: u64,
        /// Learned peer the request went to.
        to: u32,
    },
    /// A miss with no table entry was forwarded to a random peer.
    ForwardRandom {
        /// Forwarding proxy.
        proxy: u32,
        /// Requested object.
        object: u64,
        /// The randomly chosen peer.
        to: u32,
    },
    /// A request visited the same proxy twice; sent to the origin.
    LoopDetected {
        /// Detecting proxy.
        proxy: u32,
        /// Requested object.
        object: u64,
    },
    /// A request exhausted the hop limit; sent to the origin.
    HopLimitHit {
        /// The proxy that gave up.
        proxy: u32,
        /// Requested object.
        object: u64,
        /// Hops the request had accumulated on arrival.
        hops: u32,
    },
    /// The tables named this proxy responsible (`THIS`) but the data is
    /// not stored; fetched from the origin.
    OriginThisMiss {
        /// The responsible-but-missing proxy.
        proxy: u32,
        /// Requested object.
        object: u64,
    },
    /// A request was served from the local cache.
    LocalHit {
        /// Serving proxy.
        proxy: u32,
        /// Requested object.
        object: u64,
    },
    /// A backwarding reply taught this proxy that a *remote* peer is the
    /// object's resolver (the paper's multicast-by-backwarding learning
    /// step).
    BackwardAdoption {
        /// Learning proxy.
        proxy: u32,
        /// The object whose location was learned.
        object: u64,
        /// The adopted owner.
        owner: u32,
    },
    /// An entry moved between mapping tables (promotion or demotion).
    TableMigration {
        /// The proxy whose tables changed.
        proxy: u32,
        /// The migrating object.
        object: u64,
        /// Table the entry left.
        from: TableLevel,
        /// Table the entry entered.
        to: TableLevel,
    },
    /// The object's data was admitted into the local store.
    CacheInsert {
        /// Storing proxy.
        proxy: u32,
        /// Stored object.
        object: u64,
    },
    /// The object's data was evicted from the local store.
    CacheEvict {
        /// Evicting proxy.
        proxy: u32,
        /// Evicted object.
        object: u64,
    },
    /// A reply matched no pending request (duplicate or injected fault)
    /// and was dropped.
    ReplyOrphaned {
        /// The proxy that dropped it.
        proxy: u32,
        /// The orphaned reply's object.
        object: u64,
    },
}

/// The discriminant of a [`SimEvent`], for counting and labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum EventKind {
    /// [`SimEvent::RequestInjected`]
    RequestInjected = 0,
    /// [`SimEvent::RequestCompleted`]
    RequestCompleted,
    /// [`SimEvent::ForwardLearned`]
    ForwardLearned,
    /// [`SimEvent::ForwardRandom`]
    ForwardRandom,
    /// [`SimEvent::LoopDetected`]
    LoopDetected,
    /// [`SimEvent::HopLimitHit`]
    HopLimitHit,
    /// [`SimEvent::OriginThisMiss`]
    OriginThisMiss,
    /// [`SimEvent::LocalHit`]
    LocalHit,
    /// [`SimEvent::BackwardAdoption`]
    BackwardAdoption,
    /// [`SimEvent::TableMigration`]
    TableMigration,
    /// [`SimEvent::CacheInsert`]
    CacheInsert,
    /// [`SimEvent::CacheEvict`]
    CacheEvict,
    /// [`SimEvent::ReplyOrphaned`]
    ReplyOrphaned,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 13] = [
        EventKind::RequestInjected,
        EventKind::RequestCompleted,
        EventKind::ForwardLearned,
        EventKind::ForwardRandom,
        EventKind::LoopDetected,
        EventKind::HopLimitHit,
        EventKind::OriginThisMiss,
        EventKind::LocalHit,
        EventKind::BackwardAdoption,
        EventKind::TableMigration,
        EventKind::CacheInsert,
        EventKind::CacheEvict,
        EventKind::ReplyOrphaned,
    ];

    /// Number of kinds (length of [`EventKind::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name, used as the `"event"` field by the
    /// exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestInjected => "request_injected",
            EventKind::RequestCompleted => "request_completed",
            EventKind::ForwardLearned => "forward_learned",
            EventKind::ForwardRandom => "forward_random",
            EventKind::LoopDetected => "loop_detected",
            EventKind::HopLimitHit => "hop_limit_hit",
            EventKind::OriginThisMiss => "origin_this_miss",
            EventKind::LocalHit => "local_hit",
            EventKind::BackwardAdoption => "backward_adoption",
            EventKind::TableMigration => "table_migration",
            EventKind::CacheInsert => "cache_insert",
            EventKind::CacheEvict => "cache_evict",
            EventKind::ReplyOrphaned => "reply_orphaned",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SimEvent {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            SimEvent::RequestInjected { .. } => EventKind::RequestInjected,
            SimEvent::RequestCompleted { .. } => EventKind::RequestCompleted,
            SimEvent::ForwardLearned { .. } => EventKind::ForwardLearned,
            SimEvent::ForwardRandom { .. } => EventKind::ForwardRandom,
            SimEvent::LoopDetected { .. } => EventKind::LoopDetected,
            SimEvent::HopLimitHit { .. } => EventKind::HopLimitHit,
            SimEvent::OriginThisMiss { .. } => EventKind::OriginThisMiss,
            SimEvent::LocalHit { .. } => EventKind::LocalHit,
            SimEvent::BackwardAdoption { .. } => EventKind::BackwardAdoption,
            SimEvent::TableMigration { .. } => EventKind::TableMigration,
            SimEvent::CacheInsert { .. } => EventKind::CacheInsert,
            SimEvent::CacheEvict { .. } => EventKind::CacheEvict,
            SimEvent::ReplyOrphaned { .. } => EventKind::ReplyOrphaned,
        }
    }

    /// The proxy that emitted the event, when there is one (runner-level
    /// flow events have none).
    pub fn proxy(&self) -> Option<u32> {
        match *self {
            SimEvent::RequestInjected { .. } | SimEvent::RequestCompleted { .. } => None,
            SimEvent::ForwardLearned { proxy, .. }
            | SimEvent::ForwardRandom { proxy, .. }
            | SimEvent::LoopDetected { proxy, .. }
            | SimEvent::HopLimitHit { proxy, .. }
            | SimEvent::OriginThisMiss { proxy, .. }
            | SimEvent::LocalHit { proxy, .. }
            | SimEvent::BackwardAdoption { proxy, .. }
            | SimEvent::TableMigration { proxy, .. }
            | SimEvent::CacheInsert { proxy, .. }
            | SimEvent::CacheEvict { proxy, .. }
            | SimEvent::ReplyOrphaned { proxy, .. } => Some(proxy),
        }
    }

    /// The object the event concerns.
    pub fn object(&self) -> u64 {
        match *self {
            SimEvent::RequestInjected { object, .. }
            | SimEvent::RequestCompleted { object, .. }
            | SimEvent::ForwardLearned { object, .. }
            | SimEvent::ForwardRandom { object, .. }
            | SimEvent::LoopDetected { object, .. }
            | SimEvent::HopLimitHit { object, .. }
            | SimEvent::OriginThisMiss { object, .. }
            | SimEvent::LocalHit { object, .. }
            | SimEvent::BackwardAdoption { object, .. }
            | SimEvent::TableMigration { object, .. }
            | SimEvent::CacheInsert { object, .. }
            | SimEvent::CacheEvict { object, .. }
            | SimEvent::ReplyOrphaned { object, .. } => object,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_and_names_unique() {
        let events = [
            SimEvent::RequestInjected {
                client: 1,
                seq: 2,
                object: 3,
            },
            SimEvent::RequestCompleted {
                client: 1,
                seq: 2,
                object: 3,
                hit: true,
                hops: 2,
                start_us: 0,
            },
            SimEvent::ForwardLearned {
                proxy: 0,
                object: 3,
                to: 1,
            },
            SimEvent::ForwardRandom {
                proxy: 0,
                object: 3,
                to: 1,
            },
            SimEvent::LoopDetected {
                proxy: 0,
                object: 3,
            },
            SimEvent::HopLimitHit {
                proxy: 0,
                object: 3,
                hops: 16,
            },
            SimEvent::OriginThisMiss {
                proxy: 0,
                object: 3,
            },
            SimEvent::LocalHit {
                proxy: 0,
                object: 3,
            },
            SimEvent::BackwardAdoption {
                proxy: 0,
                object: 3,
                owner: 2,
            },
            SimEvent::TableMigration {
                proxy: 0,
                object: 3,
                from: TableLevel::Single,
                to: TableLevel::Multiple,
            },
            SimEvent::CacheInsert {
                proxy: 0,
                object: 3,
            },
            SimEvent::CacheEvict {
                proxy: 0,
                object: 3,
            },
            SimEvent::ReplyOrphaned {
                proxy: 0,
                object: 3,
            },
        ];
        assert_eq!(events.len(), EventKind::COUNT);
        let mut names = std::collections::HashSet::new();
        for (event, kind) in events.iter().zip(EventKind::ALL) {
            assert_eq!(event.kind(), kind);
            assert_eq!(event.object(), 3);
            assert!(names.insert(kind.name()), "duplicate name {}", kind);
        }
    }

    #[test]
    fn proxy_accessor_distinguishes_flow_events() {
        assert_eq!(
            SimEvent::RequestInjected {
                client: 1,
                seq: 0,
                object: 9
            }
            .proxy(),
            None
        );
        assert_eq!(
            SimEvent::LocalHit {
                proxy: 4,
                object: 9
            }
            .proxy(),
            Some(4)
        );
    }

    #[test]
    fn table_level_names() {
        assert_eq!(TableLevel::Out.to_string(), "out");
        assert_eq!(TableLevel::Caching.name(), "caching");
    }
}
