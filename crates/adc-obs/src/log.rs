//! A bounded in-memory event recorder.

use crate::event::SimEvent;
use crate::probe::Probe;

/// A [`Probe`] that stores every event with the timestamp of the latest
/// [`Probe::tick`], up to a fixed capacity; further events are counted
/// as dropped rather than grown without bound. The captured stream feeds
/// the JSONL and chrome-trace exporters.
#[derive(Debug, Clone)]
pub struct EventLog {
    now_us: u64,
    events: Vec<(u64, SimEvent)>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Default capacity (events) when none is given: 2^20 ≈ one million
    /// events, ~25 MB. Matches the `TraceLog` hard bound.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a log bounded at [`EventLog::DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        EventLog::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a log bounded at `capacity` events. The backing storage
    /// is grown on demand, not pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            now_us: 0,
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The recorded `(timestamp_us, event)` pairs, in emission order.
    pub fn events(&self) -> &[(u64, SimEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of events this log will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The timestamp of the latest [`Probe::tick`], microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

impl Probe for EventLog {
    const ENABLED: bool = true;

    #[inline]
    fn tick(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        if self.events.len() < self.capacity {
            self.events.push((self.now_us, event));
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(object: u64) -> SimEvent {
        SimEvent::LocalHit { proxy: 0, object }
    }

    #[test]
    fn records_with_latest_tick_timestamp() {
        let mut log = EventLog::new();
        log.tick(10);
        log.emit(hit(1));
        log.tick(25);
        log.emit(hit(2));
        assert_eq!(log.events(), &[(10, hit(1)), (25, hit(2))]);
        assert_eq!(log.now_us(), 25);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn drops_beyond_capacity_and_counts() {
        let mut log = EventLog::with_capacity(2);
        assert_eq!(log.capacity(), 2);
        for o in 0..5 {
            log.emit(hit(o));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.events()[1].1, hit(1));
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLog::with_capacity(0);
        assert!(log.is_empty());
        log.emit(hit(7));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
