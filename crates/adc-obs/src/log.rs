//! A bounded in-memory event recorder.

use crate::event::SimEvent;
use crate::probe::Probe;

/// What the log does when it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FullPolicy {
    /// Count further events as dropped (the historical default: the
    /// retained prefix is the *first* `capacity` events).
    DropNewest,
    /// Overwrite the oldest retained event (ring buffer: the retained
    /// window is the *last* `capacity` events).
    Ring,
}

/// A [`Probe`] that stores every event with the timestamp of the latest
/// [`Probe::tick`], up to a fixed capacity. Two bounding policies:
///
/// - [`EventLog::with_capacity`] (and [`EventLog::new`]) keep the first
///   `capacity` events and count the rest as dropped;
/// - [`EventLog::ring`] keeps the **last** `capacity` events, evicting
///   the oldest — the mode to use when the interesting events are at the
///   end of a long run.
///
/// Either way the captured stream feeds the JSONL and chrome-trace
/// exporters, and [`EventLog::drain_ordered`] recovers the stream in
/// emission order with global sequence numbers even after the ring has
/// wrapped.
#[derive(Debug, Clone)]
pub struct EventLog {
    now_us: u64,
    events: Vec<(u64, SimEvent)>,
    /// Ring mode: index of the oldest retained event (next overwrite
    /// target once full). Always 0 in drop-newest mode.
    head: usize,
    /// Total events ever emitted into this log.
    emitted: u64,
    capacity: usize,
    policy: FullPolicy,
    dropped: u64,
}

impl EventLog {
    /// Default capacity (events) when none is given: 2^20 ≈ one million
    /// events, ~25 MB. Matches the `TraceLog` hard bound.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a log bounded at [`EventLog::DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        EventLog::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a log bounded at `capacity` events (drop-newest policy).
    /// The backing storage is grown on demand, not pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            now_us: 0,
            events: Vec::new(),
            head: 0,
            emitted: 0,
            capacity,
            policy: FullPolicy::DropNewest,
            dropped: 0,
        }
    }

    /// Creates a ring log bounded at `capacity` events: once full, each
    /// new event overwrites the oldest retained one (which is counted in
    /// [`EventLog::dropped`]).
    pub fn ring(capacity: usize) -> Self {
        EventLog {
            policy: FullPolicy::Ring,
            ..EventLog::with_capacity(capacity)
        }
    }

    /// The recorded `(timestamp_us, event)` pairs in **storage** order.
    ///
    /// In drop-newest mode storage order is emission order. In ring mode
    /// the slice is rotated once the ring has wrapped (the oldest
    /// retained event sits at an interior index); use
    /// [`EventLog::drain_ordered`] or [`EventLog::iter_ordered`] for
    /// emission order.
    pub fn events(&self) -> &[(u64, SimEvent)] {
        &self.events
    }

    /// Iterates the retained events in emission order, yielding each
    /// event's global sequence number (0-based index in the full emitted
    /// stream) — correct even after a ring wraparound.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u64, SimEvent)> + '_ {
        let first_seq = self.first_retained_seq();
        let (tail, hd) = self.events.split_at(self.head);
        hd.iter()
            .chain(tail.iter())
            .enumerate()
            .map(move |(i, &(_t, ev))| (first_seq + i as u64, ev))
    }

    /// Drains the log, yielding `(seq, event)` in emission order with
    /// global sequence numbers (see [`EventLog::iter_ordered`]). The log
    /// is empty afterwards; sequence numbers keep counting from where
    /// the stream left off if recording continues.
    pub fn drain_ordered(&mut self) -> impl Iterator<Item = (u64, SimEvent)> + '_ {
        let first_seq = self.first_retained_seq();
        // Rotate the ring so storage order becomes emission order, then
        // drain front to back.
        self.events.rotate_left(self.head);
        self.head = 0;
        self.events
            .drain(..)
            .enumerate()
            .map(move |(i, (_t, ev))| (first_seq + i as u64, ev))
    }

    /// Global sequence number of the oldest retained event.
    fn first_retained_seq(&self) -> u64 {
        match self.policy {
            // Drop-newest keeps the emitted prefix: seqs start at 0.
            FullPolicy::DropNewest => 0,
            // The ring keeps the emitted suffix.
            FullPolicy::Ring => self.emitted - self.events.len() as u64,
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of events this log will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded because the log was full (newest in drop-newest
    /// mode, oldest in ring mode).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted into this log (retained + discarded).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The timestamp of the latest [`Probe::tick`], microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

impl Probe for EventLog {
    const ENABLED: bool = true;

    #[inline]
    fn tick(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        self.emitted += 1;
        if self.events.len() < self.capacity {
            self.events.push((self.now_us, event));
        } else {
            match self.policy {
                FullPolicy::DropNewest => self.dropped += 1,
                FullPolicy::Ring => {
                    if self.capacity == 0 {
                        self.dropped += 1;
                        return;
                    }
                    // head < capacity == events.len() by the branch above.
                    self.events[self.head] = (self.now_us, event);
                    self.head = (self.head + 1) % self.capacity;
                    self.dropped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(object: u64) -> SimEvent {
        SimEvent::LocalHit { proxy: 0, object }
    }

    #[test]
    fn records_with_latest_tick_timestamp() {
        let mut log = EventLog::new();
        log.tick(10);
        log.emit(hit(1));
        log.tick(25);
        log.emit(hit(2));
        assert_eq!(log.events(), &[(10, hit(1)), (25, hit(2))]);
        assert_eq!(log.now_us(), 25);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn drops_beyond_capacity_and_counts() {
        let mut log = EventLog::with_capacity(2);
        assert_eq!(log.capacity(), 2);
        for o in 0..5 {
            log.emit(hit(o));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.events()[1].1, hit(1));
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLog::with_capacity(0);
        assert!(log.is_empty());
        log.emit(hit(7));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_the_suffix() {
        let mut log = EventLog::ring(3);
        for o in 0..5 {
            log.tick(o * 10);
            log.emit(hit(o));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.emitted(), 5);
        // Emission order across the wraparound boundary: events 2, 3, 4
        // with their global sequence numbers.
        let ordered: Vec<(u64, SimEvent)> = log.iter_ordered().collect();
        assert_eq!(ordered, vec![(2, hit(2)), (3, hit(3)), (4, hit(4))]);
        // Storage order is rotated — exactly the undocumented shape the
        // ordered iterators exist to hide.
        assert_eq!(log.events()[0].1, hit(3));
    }

    #[test]
    fn drain_ordered_crosses_the_wraparound_boundary() {
        let mut log = EventLog::ring(4);
        for o in 0..10 {
            log.emit(hit(o));
        }
        let drained: Vec<(u64, SimEvent)> = log.drain_ordered().collect();
        assert_eq!(
            drained,
            vec![(6, hit(6)), (7, hit(7)), (8, hit(8)), (9, hit(9))]
        );
        assert!(log.is_empty());
        // Recording continues; sequence numbers keep counting.
        log.emit(hit(10));
        let next: Vec<(u64, SimEvent)> = log.drain_ordered().collect();
        assert_eq!(next, vec![(10, hit(10))]);
    }

    #[test]
    fn drain_ordered_before_wrap_matches_emission_order() {
        let mut log = EventLog::ring(8);
        for o in 0..3 {
            log.emit(hit(o));
        }
        let drained: Vec<(u64, SimEvent)> = log.drain_ordered().collect();
        assert_eq!(drained, vec![(0, hit(0)), (1, hit(1)), (2, hit(2))]);
    }

    #[test]
    fn drop_newest_drain_keeps_prefix_seqs() {
        let mut log = EventLog::with_capacity(2);
        for o in 0..4 {
            log.emit(hit(o));
        }
        let drained: Vec<(u64, SimEvent)> = log.drain_ordered().collect();
        assert_eq!(drained, vec![(0, hit(0)), (1, hit(1))]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut log = EventLog::ring(0);
        log.emit(hit(1));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.drain_ordered().count(), 0);
    }
}
