//! Structured observability for the ADC reproduction.
//!
//! This crate defines the typed event taxonomy ([`SimEvent`]), the
//! zero-cost [`Probe`] trait agents and runtimes are generic over, an
//! in-memory bounded recorder ([`EventLog`]), exporters (JSON Lines and
//! chrome://tracing `trace_event`), and the convergence sampler that
//! turns mapping-table snapshots into agreement/remap/churn series.
//!
//! It sits *below* `adc-core` in the dependency graph — the agent trait
//! itself takes a `Probe` type parameter — so events carry raw integer
//! ids instead of the core newtypes.

#![warn(missing_docs)]

pub mod chrome;
pub mod convergence;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod log;
pub mod metrics;
pub mod netspan;
pub mod probe;
pub mod span;

pub use chrome::{
    shard_lanes_to_chrome_trace, to_chrome_trace, write_chrome_trace, write_shard_lanes, ShardSlice,
};
pub use convergence::{ConvergenceConfig, ConvergenceReport, ConvergenceTracker};
pub use event::{EventKind, SimEvent, TableLevel};
pub use json::validate_json;
pub use jsonl::{to_jsonl_string, write_event_json, write_jsonl};
pub use log::EventLog;
pub use metrics::{MetricsProbe, MetricsReport, ProxyMetricsSummary};
pub use netspan::{
    derive_span_id, derive_trace_id, net_lanes_to_chrome_trace, net_spans_to_jsonl, parse_net_span,
    parse_net_spans_jsonl, write_net_lanes, write_net_span_json, NetLane, NetSpan, SpanRing,
    CLIENT_LANE, NET_LANES_PID, ORIGIN_LANE,
};
pub use probe::{CountingProbe, NullProbe, Probe};
pub use span::{ProxySpans, SegmentKind, SegmentStat, SlowFlow, SpanProbe, SpanReport};
