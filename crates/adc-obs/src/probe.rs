//! The zero-cost probe abstraction.
//!
//! Agents and runtimes are generic over a [`Probe`]; every emission site
//! is guarded by `if P::ENABLED { probe.emit(...) }`. Because `ENABLED`
//! is an associated *constant*, monomorphization over [`NullProbe`]
//! deletes both the branch and the event construction — the disabled
//! path compiles to exactly the pre-observability code.

use crate::event::{EventKind, SimEvent};

/// A receiver for [`SimEvent`]s.
///
/// Implementations must be cheap: `emit` sits on the simulator's hot
/// path. The contract with emission sites:
///
/// - emitters check [`Probe::ENABLED`] before constructing an event, so
///   a probe with `ENABLED = false` must be prepared for `emit` to never
///   be called;
/// - runtimes call [`Probe::tick`] with the current simulated (or
///   wall-clock-derived) time in microseconds *before* dispatching the
///   deliveries that happen at that time, so every `emit` is implicitly
///   timestamped by the latest `tick`.
pub trait Probe {
    /// `false` turns every guarded emission site into dead code.
    const ENABLED: bool;

    /// Advances the probe's notion of "now" (microseconds).
    #[inline(always)]
    fn tick(&mut self, now_us: u64) {
        let _ = now_us;
    }

    /// Records one event.
    #[inline(always)]
    fn emit(&mut self, event: SimEvent) {
        let _ = event;
    }
}

/// The default probe: observability disabled, all hooks compile away.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// Fan-out composition: a pair of probes is a probe that forwards every
/// tick and event to both halves. `ENABLED` is the OR of the halves, and
/// each half keeps its own compile-time guard, so pairing with
/// [`NullProbe`] costs nothing for the null side.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn tick(&mut self, now_us: u64) {
        if A::ENABLED {
            self.0.tick(now_us);
        }
        if B::ENABLED {
            self.1.tick(now_us);
        }
    }

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        if A::ENABLED {
            self.0.emit(event);
        }
        if B::ENABLED {
            self.1.emit(event);
        }
    }
}

/// A probe that only counts events per [`EventKind`] — the cheapest
/// enabled probe, used by the stat-reconciliation property tests.
#[derive(Debug, Default, Clone)]
pub struct CountingProbe {
    counts: [u64; EventKind::COUNT],
}

impl CountingProbe {
    /// Creates a probe with all counters at zero.
    pub fn new() -> Self {
        CountingProbe::default()
    }

    /// Number of events of `kind` seen so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events seen across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Probe for CountingProbe {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        self.counts[event.kind() as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_inert() {
        const { assert!(!NullProbe::ENABLED) };
        let mut p = NullProbe;
        p.tick(42);
        p.emit(SimEvent::LocalHit {
            proxy: 0,
            object: 1,
        });
    }

    #[test]
    fn probe_pairs_fan_out_and_or_enablement() {
        const { assert!(!<(NullProbe, NullProbe) as Probe>::ENABLED) };
        const { assert!(<(NullProbe, CountingProbe) as Probe>::ENABLED) };
        let mut pair = (CountingProbe::new(), CountingProbe::new());
        pair.tick(7);
        pair.emit(SimEvent::LocalHit {
            proxy: 0,
            object: 1,
        });
        assert_eq!(pair.0.total(), 1);
        assert_eq!(pair.1.total(), 1);
    }

    #[test]
    fn counting_probe_counts_per_kind() {
        let mut p = CountingProbe::new();
        const { assert!(CountingProbe::ENABLED) };
        p.emit(SimEvent::LocalHit {
            proxy: 0,
            object: 1,
        });
        p.emit(SimEvent::LocalHit {
            proxy: 1,
            object: 2,
        });
        p.emit(SimEvent::CacheEvict {
            proxy: 0,
            object: 1,
        });
        assert_eq!(p.count(EventKind::LocalHit), 2);
        assert_eq!(p.count(EventKind::CacheEvict), 1);
        assert_eq!(p.count(EventKind::CacheInsert), 0);
        assert_eq!(p.total(), 3);
    }
}
