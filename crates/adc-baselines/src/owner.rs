//! Object-to-proxy ownership functions used by hash-routing proxies.
//!
//! The paper's baseline is "one simple hashing algorithm based on the
//! widely used CARP approach": a globally known hash function assigns
//! every object to exactly one proxy. CARP itself uses highest-random-
//! weight (HRW) hashing; we provide that plus a consistent-hash ring for
//! comparison.

use adc_core::{ObjectId, ProxyId};
use std::collections::BTreeMap;

/// A globally agreed object → proxy assignment.
pub trait OwnerMap {
    /// The proxy responsible for `object`.
    fn owner(&self, object: ObjectId) -> ProxyId;

    /// All proxies this map can assign to.
    fn proxies(&self) -> &[ProxyId];
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well distributed, stable.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// CARP-style highest-random-weight (rendezvous) hashing: the owner of an
/// object is the proxy with the highest combined hash score. Removing one
/// proxy remaps only the objects that proxy owned.
///
/// # Examples
///
/// ```
/// use adc_baselines::{Hrw, OwnerMap};
/// use adc_core::{ObjectId, ProxyId};
///
/// let hrw = Hrw::new((0..5).map(ProxyId::new));
/// let owner = hrw.owner(ObjectId::new(7));
/// assert!(hrw.proxies().contains(&owner));
/// // Deterministic.
/// assert_eq!(owner, hrw.owner(ObjectId::new(7)));
/// ```
#[derive(Debug, Clone)]
pub struct Hrw {
    proxies: Vec<ProxyId>,
}

impl Hrw {
    /// Creates an HRW map over the given proxies.
    ///
    /// # Panics
    ///
    /// Panics if the proxy set is empty.
    pub fn new(proxies: impl IntoIterator<Item = ProxyId>) -> Self {
        let proxies: Vec<ProxyId> = proxies.into_iter().collect();
        assert!(!proxies.is_empty(), "owner map needs at least one proxy");
        Hrw { proxies }
    }

    /// The combined score of `(object, proxy)`; exposed for tests.
    pub fn score(object: ObjectId, proxy: ProxyId) -> u64 {
        mix(object.raw() ^ mix(proxy.raw() as u64 ^ 0x5bd1_e995))
    }
}

impl OwnerMap for Hrw {
    fn owner(&self, object: ObjectId) -> ProxyId {
        *self
            .proxies
            .iter()
            .max_by_key(|&&p| Self::score(object, p))
            // Invariant: constructors reject empty proxy sets.
            // adc-lint: allow(panic)
            .expect("proxy set is non-empty")
    }

    fn proxies(&self) -> &[ProxyId] {
        &self.proxies
    }
}

/// Consistent hashing on a ring with virtual nodes (Karger et al.,
/// the paper's reference [13]).
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    ring: BTreeMap<u64, ProxyId>,
    proxies: Vec<ProxyId>,
}

impl ConsistentRing {
    /// Creates a ring with `vnodes` virtual nodes per proxy.
    ///
    /// # Panics
    ///
    /// Panics if the proxy set is empty or `vnodes` is zero.
    pub fn new(proxies: impl IntoIterator<Item = ProxyId>, vnodes: usize) -> Self {
        let proxies: Vec<ProxyId> = proxies.into_iter().collect();
        assert!(!proxies.is_empty(), "owner map needs at least one proxy");
        assert!(vnodes > 0, "need at least one virtual node per proxy");
        let mut ring = BTreeMap::new();
        for &p in &proxies {
            for v in 0..vnodes {
                // Salt the vnode input so it can never coincide with an
                // object hash (objects and vnode indexes are both small
                // integers; identical inputs would pin every low-numbered
                // object onto one proxy's vnodes).
                let point = mix((u64::from(p.raw()) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (v as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
                ring.insert(point, p);
            }
        }
        ConsistentRing { ring, proxies }
    }

    /// Number of points on the ring.
    pub fn points(&self) -> usize {
        self.ring.len()
    }
}

impl OwnerMap for ConsistentRing {
    fn owner(&self, object: ObjectId) -> ProxyId {
        let h = mix(object.raw() ^ 0xd6e8_feb8_6659_fd93);
        // First point clockwise from the object's hash, wrapping around.
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &p)| p)
            // Invariant: constructors reject empty proxy sets.
            // adc-lint: allow(panic)
            .expect("ring is non-empty")
    }

    fn proxies(&self) -> &[ProxyId] {
        &self.proxies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn proxies(n: u32) -> Vec<ProxyId> {
        (0..n).map(ProxyId::new).collect()
    }

    #[test]
    fn hrw_is_deterministic_and_in_range() {
        let hrw = Hrw::new(proxies(5));
        for i in 0..1000 {
            let o = ObjectId::new(i);
            let a = hrw.owner(o);
            assert_eq!(a, hrw.owner(o));
            assert!(a.raw() < 5);
        }
    }

    #[test]
    fn hrw_balances_load() {
        let hrw = Hrw::new(proxies(5));
        let mut counts: HashMap<ProxyId, usize> = HashMap::new();
        let n = 50_000;
        for i in 0..n {
            *counts.entry(hrw.owner(ObjectId::new(i))).or_default() += 1;
        }
        for (&p, &c) in &counts {
            let share = c as f64 / n as f64;
            assert!((share - 0.2).abs() < 0.02, "proxy {p} got share {share:.3}");
        }
    }

    #[test]
    fn hrw_minimal_disruption_on_removal() {
        // Removing proxy 4 must remap only the objects proxy 4 owned.
        let full = Hrw::new(proxies(5));
        let reduced = Hrw::new(proxies(4));
        for i in 0..10_000 {
            let o = ObjectId::new(i);
            let before = full.owner(o);
            let after = reduced.owner(o);
            if before.raw() != 4 {
                assert_eq!(before, after, "object {i} moved unnecessarily");
            } else {
                assert!(after.raw() < 4);
            }
        }
    }

    #[test]
    fn ring_is_deterministic_and_in_range() {
        let ring = ConsistentRing::new(proxies(5), 64);
        assert_eq!(ring.points(), 5 * 64);
        for i in 0..1000 {
            let o = ObjectId::new(i);
            assert_eq!(ring.owner(o), ring.owner(o));
            assert!(ring.owner(o).raw() < 5);
        }
    }

    #[test]
    fn ring_balance_improves_with_vnodes() {
        let imbalance = |vnodes: usize| {
            let ring = ConsistentRing::new(proxies(5), vnodes);
            let mut counts: HashMap<ProxyId, usize> = HashMap::new();
            let n = 20_000;
            for i in 0..n {
                *counts.entry(ring.owner(ObjectId::new(i))).or_default() += 1;
            }
            let max = *counts.values().max().unwrap() as f64;
            let min = counts.values().copied().min().unwrap_or(0) as f64;
            (max - min) / n as f64
        };
        assert!(imbalance(128) < imbalance(1));
    }

    #[test]
    fn ring_spreads_low_numbered_objects() {
        // Regression: object IDs and vnode indexes are both small
        // integers; an unsalted ring hashed them identically and pinned
        // every low-numbered object onto proxy 0's vnodes.
        let ring = ConsistentRing::new(proxies(5), 128);
        let mut counts = [0usize; 5];
        for i in 0..120 {
            counts[ring.owner(ObjectId::new(i)).raw() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max < 70,
            "low object IDs concentrate on one proxy: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "some proxy owns nothing: {counts:?}"
        );
    }

    #[test]
    fn ring_wraps_around() {
        // With one proxy and one vnode every object maps to it, including
        // objects hashing past the single ring point.
        let ring = ConsistentRing::new(proxies(1), 1);
        for i in 0..100 {
            assert_eq!(ring.owner(ObjectId::new(i)), ProxyId::new(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one proxy")]
    fn empty_hrw_rejected() {
        let _ = Hrw::new(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "at least one virtual node")]
    fn zero_vnodes_rejected() {
        let _ = ConsistentRing::new(proxies(2), 0);
    }
}
