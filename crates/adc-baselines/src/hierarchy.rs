//! A classic hierarchical caching baseline (the paper's other reference
//! point, e.g. Harvest/Squid-style trees, references [20][27]).
//!
//! Proxies form a tree. A miss travels up toward the root, the root
//! fetches from the origin, and on the way back down *every* proxy on the
//! path stores a copy under LRU replacement — the "every proxy stores all
//! passing objects regardless of its future significance" behaviour the
//! paper's selective caching argues against.

use crate::lru_cache::BoundedLru;
use adc_core::{
    ActionSink, CacheAgent, CacheEvent, NodeId, ObjectId, Probe, ProxyId, ProxyStats, Reply,
    Request, RequestId, SimEvent, DEFAULT_OBJECT_SIZE,
};
use rand::RngCore;
use std::collections::BTreeMap;

/// One proxy in a caching hierarchy.
#[derive(Debug)]
pub struct HierarchyProxy {
    id: ProxyId,
    /// The next proxy up the tree; `None` for the root (which talks to
    /// the origin server).
    parent: Option<ProxyId>,
    cache: BoundedLru,
    pending: BTreeMap<RequestId, Vec<NodeId>>,
    stats: ProxyStats,
    cache_events: Vec<CacheEvent>,
}

impl HierarchyProxy {
    /// Creates one hierarchy node.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity` is zero or `parent == Some(id)`.
    pub fn new(id: ProxyId, parent: Option<ProxyId>, cache_capacity: usize) -> Self {
        assert_ne!(parent, Some(id), "a proxy cannot be its own parent");
        HierarchyProxy {
            id,
            parent,
            cache: BoundedLru::new(cache_capacity),
            pending: BTreeMap::new(),
            stats: ProxyStats::default(),
            cache_events: Vec::new(),
        }
    }

    /// Builds a complete binary tree of `n` proxies (node 0 is the root,
    /// node `i`'s parent is `(i − 1) / 2`), each with the same cache
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `cache_capacity` is zero.
    pub fn binary_tree(n: u32, cache_capacity: usize) -> Vec<HierarchyProxy> {
        assert!(n > 0, "need at least one proxy");
        (0..n)
            .map(|i| {
                let parent = (i > 0).then(|| ProxyId::new((i - 1) / 2));
                HierarchyProxy::new(ProxyId::new(i), parent, cache_capacity)
            })
            .collect()
    }

    /// This node's parent, if any.
    pub fn parent(&self) -> Option<ProxyId> {
        self.parent
    }

    /// Number of requests awaiting replies.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn store<P: Probe>(&mut self, object: ObjectId, probe: &mut P) {
        if self.cache.contains(object) {
            self.cache.touch(object);
            return;
        }
        if let Some(evicted) = self.cache.insert(object) {
            self.stats.cache_evictions += 1;
            self.cache_events.push(CacheEvent::Evict(evicted));
            if P::ENABLED {
                probe.emit(SimEvent::CacheEvict {
                    proxy: self.id.raw(),
                    object: evicted.raw(),
                });
            }
        }
        self.stats.cache_insertions += 1;
        self.cache_events.push(CacheEvent::Store(object));
        if P::ENABLED {
            probe.emit(SimEvent::CacheInsert {
                proxy: self.id.raw(),
                object: object.raw(),
            });
        }
    }
}

impl CacheAgent for HierarchyProxy {
    fn proxy_id(&self) -> ProxyId {
        self.id
    }

    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        _rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    ) {
        self.stats.requests_received += 1;
        if self.cache.contains(request.object) {
            self.cache.touch(request.object);
            self.stats.local_hits += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LocalHit {
                    proxy: self.id.raw(),
                    object: request.object.raw(),
                });
            }
            let reply = Reply::from_cache(&request, self.id, DEFAULT_OBJECT_SIZE);
            out.send(request.sender, reply);
            return;
        }
        self.pending
            .entry(request.id)
            .or_default()
            .push(request.sender);
        let mut forwarded = request;
        forwarded.sender = NodeId::Proxy(self.id);
        forwarded.hops += 1;
        match self.parent {
            Some(parent) => {
                self.stats.forwards_learned += 1;
                if P::ENABLED {
                    probe.emit(SimEvent::ForwardLearned {
                        proxy: self.id.raw(),
                        object: forwarded.object.raw(),
                        to: parent.raw(),
                    });
                }
                out.send(parent, forwarded);
            }
            None => {
                self.stats.origin_this_miss += 1;
                if P::ENABLED {
                    probe.emit(SimEvent::OriginThisMiss {
                        proxy: self.id.raw(),
                        object: forwarded.object.raw(),
                    });
                }
                out.send(NodeId::Origin, forwarded);
            }
        }
    }

    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink) {
        let prev_hop = {
            let stack = match self.pending.get_mut(&reply.id) {
                Some(s) => s,
                None => {
                    self.stats.replies_orphaned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ReplyOrphaned {
                            proxy: self.id.raw(),
                            object: reply.object.raw(),
                        });
                    }
                    return;
                }
            };
            // Invariant: stacks are removed when their last hop pops.
            // adc-lint: allow(panic)
            let hop = stack.pop().expect("pending stacks are never empty");
            if stack.is_empty() {
                self.pending.remove(&reply.id);
            }
            hop
        };
        // Reply-path events are emitted by store() below (CacheInsert /
        // CacheEvict) and by the runner (RequestCompleted).
        // adc-lint: allow(obs-coverage)
        self.stats.replies_processed += 1;
        // Hierarchical caching: store every passing object.
        self.store(reply.object, probe);
        let mut reply = reply;
        if reply.resolver.is_none() {
            reply.resolver = Some(self.id);
        }
        out.send(prev_hop, reply);
    }

    fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    fn drain_cache_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.cache_events)
    }

    fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    fn is_cached(&self, object: ObjectId) -> bool {
        self.cache.contains(object)
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.pending.clear();
        self.cache_events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{Action, ClientId, Message};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(seq: u64, object: u64) -> Request {
        Request::new(
            RequestId::new(ClientId::new(0), seq),
            ObjectId::new(object),
            ClientId::new(0),
        )
    }

    #[test]
    fn binary_tree_shape() {
        let tree = HierarchyProxy::binary_tree(7, 8);
        assert_eq!(tree[0].parent(), None);
        assert_eq!(tree[1].parent(), Some(ProxyId::new(0)));
        assert_eq!(tree[2].parent(), Some(ProxyId::new(0)));
        assert_eq!(tree[3].parent(), Some(ProxyId::new(1)));
        assert_eq!(tree[6].parent(), Some(ProxyId::new(2)));
    }

    #[test]
    fn leaf_miss_climbs_to_parent() {
        let mut tree = HierarchyProxy::binary_tree(3, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let Action::Send { to, message } = tree[1].request_action(req(0, 5), &mut rng);
        assert_eq!(to, NodeId::Proxy(ProxyId::new(0)));
        let forwarded = match message {
            Message::Request(f) => f,
            _ => panic!("miss must forward"),
        };
        // Root misses too: goes to the origin.
        let Action::Send { to, message } = tree[0].request_action(forwarded, &mut rng);
        assert_eq!(to, NodeId::Origin);
        let at_origin = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        // Reply retraces: root caches, then leaf caches.
        let reply = Reply::from_origin(&at_origin, 10);
        let Action::Send { to, message } = tree[0].reply_action(reply).unwrap();
        assert_eq!(to, NodeId::Proxy(ProxyId::new(1)));
        assert!(tree[0].is_cached(ObjectId::new(5)));
        let reply = match message {
            Message::Reply(r) => r,
            _ => panic!(),
        };
        let Action::Send { to, .. } = tree[1].reply_action(reply).unwrap();
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        assert!(tree[1].is_cached(ObjectId::new(5)));
        assert_eq!(tree[0].pending_requests(), 0);
        assert_eq!(tree[1].pending_requests(), 0);
    }

    #[test]
    fn second_request_hits_at_leaf() {
        let mut tree = HierarchyProxy::binary_tree(3, 8);
        let mut rng = StdRng::seed_from_u64(1);
        // Prime via leaf 1 (as in the previous test, compressed).
        let Action::Send { message, .. } = tree[1].request_action(req(0, 5), &mut rng);
        let f = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let Action::Send { message, .. } = tree[0].request_action(f, &mut rng);
        let f = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let Action::Send { message, .. } =
            tree[0].reply_action(Reply::from_origin(&f, 10)).unwrap();
        let r = match message {
            Message::Reply(r) => r,
            _ => panic!(),
        };
        tree[1].reply_action(r).unwrap();
        // Second request: leaf hit, 0 extra hops.
        let Action::Send { to, message } = tree[1].request_action(req(1, 5), &mut rng);
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        assert!(matches!(message, Message::Reply(_)));
        assert_eq!(tree[1].stats().local_hits, 1);
    }

    #[test]
    fn sibling_hit_at_shared_parent() {
        let mut tree = HierarchyProxy::binary_tree(3, 8);
        let mut rng = StdRng::seed_from_u64(1);
        // Prime through leaf 1 so the root holds a copy.
        let Action::Send { message, .. } = tree[1].request_action(req(0, 5), &mut rng);
        let f = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let Action::Send { message, .. } = tree[0].request_action(f, &mut rng);
        let f = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let Action::Send { message, .. } =
            tree[0].reply_action(Reply::from_origin(&f, 10)).unwrap();
        let r = match message {
            Message::Reply(r) => r,
            _ => panic!(),
        };
        tree[1].reply_action(r).unwrap();
        // Leaf 2 misses but the root answers without the origin.
        let Action::Send { message, .. } = tree[2].request_action(req(1, 5), &mut rng);
        let f = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let Action::Send { to, message } = tree[0].request_action(f, &mut rng);
        assert_eq!(to, NodeId::Proxy(ProxyId::new(2)));
        match message {
            Message::Reply(r) => assert!(r.served_from.is_hit()),
            _ => panic!("root should answer from cache"),
        }
    }

    #[test]
    #[should_panic(expected = "own parent")]
    fn self_parent_rejected() {
        let _ = HierarchyProxy::new(ProxyId::new(1), Some(ProxyId::new(1)), 4);
    }
}
