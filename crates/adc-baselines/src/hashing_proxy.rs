//! The hash-routing proxy baseline (the paper's §V.1.1).
//!
//! "A proxy in the CARP algorithm tries to resolve incoming requests by
//! means of its locally cached data and forwards the unresolved request in
//! accordance to a globally known hashing function assigning the requested
//! object to a specific location in the total set of known proxies. If the
//! second proxy cannot resolve the forwarded request, the request will be
//! assigned to the origin server. After the request got resolved the
//! second proxy will store the received data replacing existing
//! information based on the LRU algorithm and forward the request directly
//! to the requesting client, bypassing the first proxy."

use crate::lru_cache::BoundedLru;
use crate::owner::{Hrw, OwnerMap};
use adc_core::{
    ActionSink, CacheAgent, CacheEvent, ClientId, NodeId, ObjectId, Probe, ProxyId, ProxyStats,
    Reply, Request, RequestId, SimEvent, DEFAULT_OBJECT_SIZE,
};
use rand::RngCore;
use std::collections::BTreeMap;

/// A hash-routing proxy, generic over the ownership function.
///
/// Use [`CarpProxy`] for the paper's CARP/HRW baseline or plug in a
/// [`ConsistentRing`](crate::ConsistentRing) for the consistent-hashing
/// variant.
#[derive(Debug)]
pub struct HashingProxy<O> {
    id: ProxyId,
    owner_map: O,
    cache: BoundedLru,
    /// Requests this proxy forwarded to the origin, awaiting the reply,
    /// mapped to the client the response must go to.
    pending: BTreeMap<RequestId, ClientId>,
    stats: ProxyStats,
    cache_events: Vec<CacheEvent>,
}

/// The paper's CARP baseline: HRW-hash routing with per-proxy LRU caches.
pub type CarpProxy = HashingProxy<Hrw>;

impl CarpProxy {
    /// Creates a CARP proxy in a dense deployment of `num_proxies`.
    ///
    /// # Panics
    ///
    /// Panics if `num_proxies` is zero, `id` out of range, or
    /// `cache_capacity` is zero.
    pub fn new(id: ProxyId, num_proxies: u32, cache_capacity: usize) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        assert!(id.raw() < num_proxies, "proxy id out of range");
        HashingProxy::with_owner_map(
            id,
            Hrw::new((0..num_proxies).map(ProxyId::new)),
            cache_capacity,
        )
    }
}

impl<O: OwnerMap> HashingProxy<O> {
    /// Creates a hashing proxy with an explicit ownership function.
    ///
    /// # Panics
    ///
    /// Panics if the owner map does not include `id` or `cache_capacity`
    /// is zero.
    pub fn with_owner_map(id: ProxyId, owner_map: O, cache_capacity: usize) -> Self {
        assert!(
            owner_map.proxies().contains(&id),
            "owner map must include this proxy"
        );
        HashingProxy {
            id,
            owner_map,
            cache: BoundedLru::new(cache_capacity),
            pending: BTreeMap::new(),
            stats: ProxyStats::default(),
            cache_events: Vec::new(),
        }
    }

    /// Borrows the ownership function.
    pub fn owner_map(&self) -> &O {
        &self.owner_map
    }

    /// Number of requests awaiting an origin reply.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn store<P: Probe>(&mut self, object: ObjectId, probe: &mut P) {
        if self.cache.contains(object) {
            self.cache.touch(object);
            return;
        }
        if let Some(evicted) = self.cache.insert(object) {
            self.stats.cache_evictions += 1;
            self.cache_events.push(CacheEvent::Evict(evicted));
            if P::ENABLED {
                probe.emit(SimEvent::CacheEvict {
                    proxy: self.id.raw(),
                    object: evicted.raw(),
                });
            }
        }
        self.stats.cache_insertions += 1;
        self.cache_events.push(CacheEvent::Store(object));
        if P::ENABLED {
            probe.emit(SimEvent::CacheInsert {
                proxy: self.id.raw(),
                object: object.raw(),
            });
        }
    }
}

impl<O: OwnerMap> CacheAgent for HashingProxy<O> {
    fn proxy_id(&self) -> ProxyId {
        self.id
    }

    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        _rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    ) {
        self.stats.requests_received += 1;
        let object = request.object;

        if self.cache.contains(object) {
            // Hit anywhere (first proxy or owner): answer the client
            // directly, bypassing any first-hop proxy.
            self.cache.touch(object);
            self.stats.local_hits += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LocalHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            let reply = Reply::from_cache(&request, self.id, DEFAULT_OBJECT_SIZE);
            out.send(request.client, reply);
            return;
        }

        let owner = self.owner_map.owner(object);
        if owner == self.id {
            // We are responsible but do not have it: fetch from the
            // origin and remember whom to answer.
            self.stats.origin_this_miss += 1;
            if P::ENABLED {
                probe.emit(SimEvent::OriginThisMiss {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            self.pending.insert(request.id, request.client);
            let mut forwarded = request;
            forwarded.sender = NodeId::Proxy(self.id);
            forwarded.hops += 1;
            out.send(NodeId::Origin, forwarded);
        } else {
            // Route to the globally agreed owner.
            self.stats.forwards_learned += 1;
            if P::ENABLED {
                probe.emit(SimEvent::ForwardLearned {
                    proxy: self.id.raw(),
                    object: object.raw(),
                    to: owner.raw(),
                });
            }
            let mut forwarded = request;
            forwarded.sender = NodeId::Proxy(self.id);
            forwarded.hops += 1;
            out.send(owner, forwarded);
        }
    }

    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink) {
        let client = match self.pending.remove(&reply.id) {
            Some(c) => c,
            None => {
                self.stats.replies_orphaned += 1;
                if P::ENABLED {
                    probe.emit(SimEvent::ReplyOrphaned {
                        proxy: self.id.raw(),
                        object: reply.object.raw(),
                    });
                }
                return;
            }
        };
        self.stats.replies_processed += 1;
        // Store the fetched object under LRU replacement, then answer the
        // client directly.
        self.store(reply.object, probe);
        let mut reply = reply;
        reply.resolver = Some(self.id);
        out.send(client, reply);
    }

    fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    fn drain_cache_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.cache_events)
    }

    fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    fn is_cached(&self, object: ObjectId) -> bool {
        self.cache.contains(object)
    }

    fn owner_hint(&self, object: ObjectId) -> Option<ProxyId> {
        // Hash routing fixes ownership globally; every proxy "agrees" by
        // construction, making this the convergence sampler's upper bound.
        Some(self.owner_map.owner(object))
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.pending.clear();
        self.cache_events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{Action, Message, ServedFrom};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(seq: u64, object: u64) -> Request {
        Request::new(
            RequestId::new(ClientId::new(1), seq),
            ObjectId::new(object),
            ClientId::new(1),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    /// Finds an object owned by proxy `owner` in an `n`-proxy system.
    fn object_owned_by(owner: u32, n: u32) -> u64 {
        let hrw = Hrw::new((0..n).map(ProxyId::new));
        (0..)
            .find(|&i| hrw.owner(ObjectId::new(i)) == ProxyId::new(owner))
            .unwrap()
    }

    #[test]
    fn non_owner_routes_to_owner() {
        let n = 4;
        let obj = object_owned_by(2, n);
        let mut p = CarpProxy::new(ProxyId::new(0), n, 8);
        let Action::Send { to, message } = p.request_action(req(0, obj), &mut rng());
        assert_eq!(to, NodeId::Proxy(ProxyId::new(2)));
        match message {
            Message::Request(f) => {
                assert_eq!(f.hops, 1);
                assert_eq!(f.sender, NodeId::Proxy(ProxyId::new(0)));
            }
            _ => panic!("must forward"),
        }
        assert_eq!(p.pending_requests(), 0);
    }

    #[test]
    fn owner_miss_fetches_from_origin_then_answers_client() {
        let n = 4;
        let obj = object_owned_by(0, n);
        let mut p = CarpProxy::new(ProxyId::new(0), n, 8);
        let Action::Send { to, message } = p.request_action(req(0, obj), &mut rng());
        assert_eq!(to, NodeId::Origin);
        let forwarded = match message {
            Message::Request(f) => f,
            _ => panic!("must forward"),
        };
        assert_eq!(p.pending_requests(), 1);

        let Action::Send { to, message } =
            p.reply_action(Reply::from_origin(&forwarded, 10)).unwrap();
        assert_eq!(to, NodeId::Client(ClientId::new(1)));
        match message {
            Message::Reply(r) => {
                assert_eq!(r.served_from, ServedFrom::Origin);
                assert_eq!(r.resolver, Some(ProxyId::new(0)));
            }
            _ => panic!("must reply"),
        }
        assert!(p.is_cached(ObjectId::new(obj)));
        assert_eq!(p.pending_requests(), 0);
    }

    #[test]
    fn owner_hit_replies_directly_to_client() {
        let n = 4;
        let obj = object_owned_by(0, n);
        let mut p = CarpProxy::new(ProxyId::new(0), n, 8);
        // Prime the cache via an origin fetch.
        let Action::Send { message, .. } = p.request_action(req(0, obj), &mut rng());
        let forwarded = match message {
            Message::Request(f) => f,
            _ => panic!(),
        };
        let _ = p.reply_action(Reply::from_origin(&forwarded, 10));
        // Second request: direct hit to client (bypassing the first proxy).
        let mut second = req(1, obj);
        second.sender = NodeId::Proxy(ProxyId::new(3)); // arrived via proxy 3
        let Action::Send { to, message } = p.request_action(second, &mut rng());
        assert_eq!(to, NodeId::Client(ClientId::new(1)));
        match message {
            Message::Reply(r) => assert!(r.served_from.is_hit()),
            _ => panic!("hit must reply"),
        }
        assert_eq!(p.stats().local_hits, 1);
    }

    #[test]
    fn lru_replacement_in_cache() {
        let n = 1;
        let mut p = CarpProxy::new(ProxyId::new(0), n, 2);
        let mut r = rng();
        for (seq, obj) in [(0u64, 1u64), (1, 2), (2, 3)] {
            let Action::Send { message, .. } = p.request_action(req(seq, obj), &mut r);
            let f = match message {
                Message::Request(f) => f,
                _ => panic!(),
            };
            let _ = p.reply_action(Reply::from_origin(&f, 10));
        }
        assert!(!p.is_cached(ObjectId::new(1)), "object 1 evicted");
        assert!(p.is_cached(ObjectId::new(2)));
        assert!(p.is_cached(ObjectId::new(3)));
        assert_eq!(p.stats().cache_evictions, 1);
        assert_eq!(p.cached_objects(), 2);
    }

    #[test]
    fn orphan_reply_dropped() {
        let mut p = CarpProxy::new(ProxyId::new(0), 2, 2);
        assert!(p.reply_action(Reply::from_origin(&req(9, 9), 1)).is_none());
        assert_eq!(p.stats().replies_orphaned, 1);
    }

    #[test]
    fn cache_events_emitted() {
        let mut p = CarpProxy::new(ProxyId::new(0), 1, 1);
        let mut r = rng();
        for (seq, obj) in [(0u64, 1u64), (1, 2)] {
            let Action::Send { message, .. } = p.request_action(req(seq, obj), &mut r);
            let f = match message {
                Message::Request(f) => f,
                _ => panic!(),
            };
            let _ = p.reply_action(Reply::from_origin(&f, 10));
        }
        let events = p.drain_cache_events();
        assert_eq!(
            events,
            vec![
                CacheEvent::Store(ObjectId::new(1)),
                CacheEvent::Evict(ObjectId::new(1)),
                CacheEvent::Store(ObjectId::new(2)),
            ]
        );
    }
}
