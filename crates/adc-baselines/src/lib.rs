//! # adc-baselines
//!
//! Baseline distributed-caching schemes for comparison against ADC:
//!
//! * [`CarpProxy`] — the paper's baseline: CARP-style highest-random-
//!   weight hash routing ([`Hrw`]) with per-proxy LRU caches, replies
//!   returned directly to the client.
//! * [`ConsistentRing`] — consistent hashing with virtual nodes, usable
//!   with the same [`HashingProxy`] agent.
//! * [`HierarchyProxy`] — a Harvest-style caching tree in which every
//!   node stores all passing objects (the paper's other contrast class).
//! * [`SoapProxy`] — the ADC authors' earlier per-category design
//!   (§II.2), for lineage comparisons.
//! * [`BoundedLru`] — the plain LRU object cache they all use.
//!
//! All agents implement [`adc_core::CacheAgent`] and can be driven by the
//! simulator or the TCP runtime interchangeably with ADC proxies.
//!
//! # Examples
//!
//! ```
//! use adc_baselines::{CarpProxy, Hrw, OwnerMap};
//! use adc_core::{CacheAgent, ObjectId, ProxyId};
//!
//! let proxy = CarpProxy::new(ProxyId::new(0), 5, 10_000);
//! // Every proxy agrees on who owns each object, with no communication.
//! let owner = proxy.owner_map().owner(ObjectId::new(123));
//! assert!(owner.raw() < 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hashing_proxy;
mod hierarchy;
mod lru_cache;
mod owner;
mod soap;

pub use hashing_proxy::{CarpProxy, HashingProxy};
pub use hierarchy::HierarchyProxy;
pub use lru_cache::BoundedLru;
pub use owner::{ConsistentRing, Hrw, OwnerMap};
pub use soap::SoapProxy;
