//! A bounded LRU object cache, as used by the hashing proxies ("the
//! second proxy will store the received data replacing existing
//! information based on the LRU algorithm").

use adc_core::tables::LruList;
use adc_core::ObjectId;

/// Bounded LRU set of object IDs.
///
/// # Examples
///
/// ```
/// use adc_baselines::BoundedLru;
/// use adc_core::ObjectId;
///
/// let mut cache = BoundedLru::new(2);
/// cache.insert(ObjectId::new(1));
/// cache.insert(ObjectId::new(2));
/// let evicted = cache.insert(ObjectId::new(3));
/// assert_eq!(evicted, Some(ObjectId::new(1)));
/// assert!(cache.contains(ObjectId::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedLru {
    list: LruList<ObjectId, ()>,
    capacity: usize,
}

impl BoundedLru {
    /// Creates a cache bounded to `capacity` objects.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BoundedLru {
            list: LruList::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Returns `true` if `object` is cached (does not touch LRU order).
    pub fn contains(&self, object: ObjectId) -> bool {
        self.list.contains(&object)
    }

    /// Marks `object` as most recently used; returns `true` if present.
    pub fn touch(&mut self, object: ObjectId) -> bool {
        self.list.get_refresh(&object).is_some()
    }

    /// Inserts `object` as most recently used, returning the evicted
    /// object if the cache was full. Re-inserting an existing object just
    /// refreshes it.
    pub fn insert(&mut self, object: ObjectId) -> Option<ObjectId> {
        if self.list.contains(&object) {
            self.list.get_refresh(&object);
            return None;
        }
        self.list.push_front(object, ());
        if self.list.len() > self.capacity {
            self.list.pop_back().map(|(k, ())| k)
        } else {
            None
        }
    }

    /// Removes `object`; returns `true` if it was present.
    pub fn remove(&mut self, object: ObjectId) -> bool {
        self.list.remove(&object).is_some()
    }

    /// Iterates cached objects, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.list.iter().map(|(&k, ())| k)
    }

    /// Removes every cached object.
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_lru() {
        let mut c = BoundedLru::new(3);
        for i in 1..=3 {
            assert_eq!(c.insert(ObjectId::new(i)), None);
        }
        // Touch 1 so 2 becomes the eviction victim.
        assert!(c.touch(ObjectId::new(1)));
        assert_eq!(c.insert(ObjectId::new(4)), Some(ObjectId::new(2)));
        assert!(c.contains(ObjectId::new(1)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = BoundedLru::new(2);
        c.insert(ObjectId::new(1));
        c.insert(ObjectId::new(2));
        assert_eq!(c.insert(ObjectId::new(1)), None);
        assert_eq!(c.len(), 2);
        // 2 is now LRU.
        assert_eq!(c.insert(ObjectId::new(3)), Some(ObjectId::new(2)));
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut c = BoundedLru::new(2);
        assert!(!c.touch(ObjectId::new(9)));
    }

    #[test]
    fn remove_frees_space() {
        let mut c = BoundedLru::new(1);
        c.insert(ObjectId::new(1));
        assert!(c.remove(ObjectId::new(1)));
        assert!(!c.remove(ObjectId::new(1)));
        assert_eq!(c.insert(ObjectId::new(2)), None);
    }

    #[test]
    fn iter_most_recent_first() {
        let mut c = BoundedLru::new(3);
        for i in 1..=3 {
            c.insert(ObjectId::new(i));
        }
        let order: Vec<u64> = c.iter().map(|o| o.raw()).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedLru::new(0);
    }
}
