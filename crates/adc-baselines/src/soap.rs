//! SOAP — Self-Organized Adaptive Proxies (the paper's §II.2, reference
//! [10]): the ADC authors' earlier design, included for lineage
//! comparisons.
//!
//! Each proxy learns one forwarding location per URL *category* (domain),
//! not per object: "each mapping table contained one entry for a specific
//! URL domain (category) and the decision-making component mapped each
//! category onto one proxy location." Caching is plain LRU of everything
//! that passes — the paper's stated lesson from SOAP was precisely "the
//! importance of selective caching".

use crate::lru_cache::BoundedLru;
use adc_core::{
    ActionSink, CacheAgent, CacheEvent, NodeId, ObjectId, Probe, ProxyId, ProxyStats, Reply,
    Request, RequestId, SimEvent, DEFAULT_OBJECT_SIZE,
};
use rand::Rng;
use rand::RngCore;
use std::collections::BTreeMap;

/// A SOAP-style proxy: per-category location learning + LRU caching.
#[derive(Debug)]
pub struct SoapProxy {
    id: ProxyId,
    peers: Vec<ProxyId>,
    max_hops: u32,
    /// Learned location per category; `None` until first observed.
    category_map: Vec<Option<ProxyId>>,
    cache: BoundedLru,
    pending: BTreeMap<RequestId, Vec<NodeId>>,
    stats: ProxyStats,
    cache_events: Vec<CacheEvent>,
}

impl SoapProxy {
    /// Creates a SOAP proxy with `num_categories` URL categories.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `id` is out of range.
    pub fn new(
        id: ProxyId,
        num_proxies: u32,
        num_categories: usize,
        cache_capacity: usize,
        max_hops: u32,
    ) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        assert!(id.raw() < num_proxies, "proxy id out of range");
        assert!(num_categories > 0, "need at least one category");
        assert!(max_hops > 0, "max_hops must be positive");
        SoapProxy {
            id,
            peers: (0..num_proxies).map(ProxyId::new).collect(),
            max_hops,
            category_map: vec![None; num_categories],
            cache: BoundedLru::new(cache_capacity),
            pending: BTreeMap::new(),
            stats: ProxyStats::default(),
            cache_events: Vec::new(),
        }
    }

    /// The category (URL domain surrogate) of an object.
    pub fn category_of(&self, object: ObjectId) -> usize {
        (object.raw() % self.category_map.len() as u64) as usize
    }

    /// The learned location for `category`, if any.
    pub fn category_location(&self, category: usize) -> Option<ProxyId> {
        self.category_map.get(category).copied().flatten()
    }

    fn store<P: Probe>(&mut self, object: ObjectId, probe: &mut P) {
        if self.cache.contains(object) {
            self.cache.touch(object);
            return;
        }
        if let Some(evicted) = self.cache.insert(object) {
            self.stats.cache_evictions += 1;
            self.cache_events.push(CacheEvent::Evict(evicted));
            if P::ENABLED {
                probe.emit(SimEvent::CacheEvict {
                    proxy: self.id.raw(),
                    object: evicted.raw(),
                });
            }
        }
        self.stats.cache_insertions += 1;
        self.cache_events.push(CacheEvent::Store(object));
        if P::ENABLED {
            probe.emit(SimEvent::CacheInsert {
                proxy: self.id.raw(),
                object: object.raw(),
            });
        }
    }
}

impl CacheAgent for SoapProxy {
    fn proxy_id(&self) -> ProxyId {
        self.id
    }

    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    ) {
        self.stats.requests_received += 1;
        let object = request.object;

        if self.cache.contains(object) {
            self.cache.touch(object);
            self.stats.local_hits += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LocalHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            let reply = Reply::from_cache(&request, self.id, DEFAULT_OBJECT_SIZE);
            out.send(request.sender, reply);
            return;
        }

        let loop_detected = self.pending.contains_key(&request.id);
        self.pending
            .entry(request.id)
            .or_default()
            .push(request.sender);

        let mut forwarded = request;
        forwarded.sender = NodeId::Proxy(self.id);
        forwarded.hops += 1;

        let to = if loop_detected {
            self.stats.origin_loops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LoopDetected {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            NodeId::Origin
        } else if request.hops >= self.max_hops {
            self.stats.origin_max_hops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::HopLimitHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                    hops: request.hops,
                });
            }
            NodeId::Origin
        } else {
            let category = self.category_of(object);
            match self.category_map[category] {
                Some(p) if p != self.id => {
                    self.stats.forwards_learned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ForwardLearned {
                            proxy: self.id.raw(),
                            object: object.raw(),
                            to: p.raw(),
                        });
                    }
                    NodeId::Proxy(p)
                }
                Some(_) => {
                    // We are responsible for the category but miss the
                    // object: fetch from the origin.
                    self.stats.origin_this_miss += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::OriginThisMiss {
                            proxy: self.id.raw(),
                            object: object.raw(),
                        });
                    }
                    NodeId::Origin
                }
                None => {
                    self.stats.forwards_random += 1;
                    let i = rng.gen_range(0..self.peers.len());
                    let to = self.peers[i];
                    if P::ENABLED {
                        probe.emit(SimEvent::ForwardRandom {
                            proxy: self.id.raw(),
                            object: object.raw(),
                            to: to.raw(),
                        });
                    }
                    NodeId::Proxy(to)
                }
            }
        };
        out.send(to, forwarded);
    }

    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink) {
        let prev_hop = {
            let stack = match self.pending.get_mut(&reply.id) {
                Some(s) => s,
                None => {
                    self.stats.replies_orphaned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ReplyOrphaned {
                            proxy: self.id.raw(),
                            object: reply.object.raw(),
                        });
                    }
                    return;
                }
            };
            // Invariant: stacks are removed when their last hop pops.
            // adc-lint: allow(panic)
            let hop = stack.pop().expect("pending stacks are never empty");
            if stack.is_empty() {
                self.pending.remove(&reply.id);
            }
            hop
        };
        self.stats.replies_processed += 1;

        let mut reply = reply;
        if reply.resolver.is_none() {
            reply.resolver = Some(self.id);
        }
        // Invariant: set two lines above when None. adc-lint: allow(panic)
        let resolver = reply.resolver.expect("resolver was just set");
        if P::ENABLED && resolver != self.id {
            probe.emit(SimEvent::BackwardAdoption {
                proxy: self.id.raw(),
                object: reply.object.raw(),
                owner: resolver.raw(),
            });
        }
        let category = self.category_of(reply.object);
        self.category_map[category] = Some(resolver);
        // SOAP lesson: no selectivity — cache every passing object.
        self.store(reply.object, probe);
        if self.cache.contains(reply.object) && reply.cached_by.is_none() {
            reply.resolver = Some(self.id);
            reply.cached_by = Some(self.id);
        }
        out.send(prev_hop, reply);
    }

    fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    fn drain_cache_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.cache_events)
    }

    fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    fn is_cached(&self, object: ObjectId) -> bool {
        self.cache.contains(object)
    }

    fn owner_hint(&self, object: ObjectId) -> Option<ProxyId> {
        // SOAP learns one location per *category*, so its "owner" for an
        // object is whatever its category currently maps to.
        self.category_map[self.category_of(object)]
    }

    fn reset(&mut self) {
        for slot in &mut self.category_map {
            *slot = None;
        }
        self.cache.clear();
        self.pending.clear();
        self.cache_events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{Action, ClientId, Message};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(seq: u64, object: u64) -> Request {
        Request::new(
            RequestId::new(ClientId::new(0), seq),
            ObjectId::new(object),
            ClientId::new(0),
        )
    }

    fn resolve(p: &mut SoapProxy, rng: &mut StdRng, seq: u64, object: u64) {
        let mut inbox = vec![Message::Request(req(seq, object))];
        while let Some(message) = inbox.pop() {
            let action = match message {
                Message::Request(r) => Some(p.request_action(r, rng)),
                Message::Reply(r) => p.reply_action(r),
            };
            if let Some(Action::Send { to, message }) = action {
                match to {
                    NodeId::Proxy(_) => inbox.push(message),
                    NodeId::Origin => {
                        if let Message::Request(f) = message {
                            inbox.push(Message::Reply(Reply::from_origin(&f, 64)));
                        }
                    }
                    NodeId::Client(_) => {}
                }
            }
        }
    }

    #[test]
    fn categories_partition_objects() {
        let p = SoapProxy::new(ProxyId::new(0), 4, 16, 8, 8);
        assert_eq!(p.category_of(ObjectId::new(0)), 0);
        assert_eq!(p.category_of(ObjectId::new(16)), 0);
        assert_eq!(p.category_of(ObjectId::new(17)), 1);
    }

    #[test]
    fn learns_category_location_from_replies() {
        let mut p = SoapProxy::new(ProxyId::new(0), 1, 4, 8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let object = 5;
        resolve(&mut p, &mut rng, 0, object);
        let category = p.category_of(ObjectId::new(object));
        assert_eq!(p.category_location(category), Some(ProxyId::new(0)));
        // Objects of the same category share the mapping — the design's
        // coarseness.
        assert_eq!(p.category_of(ObjectId::new(object + 4)), category);
    }

    #[test]
    fn caches_everything_lru() {
        let mut p = SoapProxy::new(ProxyId::new(0), 1, 4, 2, 8);
        let mut rng = StdRng::seed_from_u64(1);
        resolve(&mut p, &mut rng, 0, 1);
        resolve(&mut p, &mut rng, 1, 2);
        resolve(&mut p, &mut rng, 2, 3);
        assert!(!p.is_cached(ObjectId::new(1)), "LRU evicts the oldest");
        assert!(p.is_cached(ObjectId::new(2)));
        assert!(p.is_cached(ObjectId::new(3)));
    }

    #[test]
    fn hit_after_caching() {
        let mut p = SoapProxy::new(ProxyId::new(0), 1, 4, 8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        resolve(&mut p, &mut rng, 0, 7);
        let Action::Send { to, .. } = p.request_action(req(1, 7), &mut rng);
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        assert_eq!(p.stats().local_hits, 1);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = SoapProxy::new(ProxyId::new(0), 1, 4, 8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        resolve(&mut p, &mut rng, 0, 7);
        assert!(p.is_cached(ObjectId::new(7)));
        p.reset();
        assert!(!p.is_cached(ObjectId::new(7)));
        assert_eq!(p.category_location(p.category_of(ObjectId::new(7))), None);
        assert_eq!(p.pending_count_for_tests(), 0);
    }

    impl SoapProxy {
        fn pending_count_for_tests(&self) -> usize {
            self.pending.len()
        }
    }
}
