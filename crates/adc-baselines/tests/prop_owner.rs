//! Property-based tests of the ownership functions and the LRU cache.

use adc_baselines::{BoundedLru, ConsistentRing, Hrw, OwnerMap};
use adc_core::{ObjectId, ProxyId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HRW assigns every object to a member of the proxy set,
    /// deterministically.
    #[test]
    fn hrw_total_and_deterministic(n in 1u32..32, objects in prop::collection::vec(any::<u64>(), 1..100)) {
        let hrw = Hrw::new((0..n).map(ProxyId::new));
        for o in objects {
            let owner = hrw.owner(ObjectId::new(o));
            prop_assert!(owner.raw() < n);
            prop_assert_eq!(owner, hrw.owner(ObjectId::new(o)));
        }
    }

    /// Minimal disruption: removing the last proxy only remaps objects it
    /// owned; all other assignments are unchanged.
    #[test]
    fn hrw_minimal_disruption(n in 2u32..16, objects in prop::collection::vec(any::<u64>(), 1..200)) {
        let full = Hrw::new((0..n).map(ProxyId::new));
        let reduced = Hrw::new((0..n - 1).map(ProxyId::new));
        for o in objects {
            let before = full.owner(ObjectId::new(o));
            let after = reduced.owner(ObjectId::new(o));
            if before.raw() != n - 1 {
                prop_assert_eq!(before, after);
            } else {
                prop_assert!(after.raw() < n - 1);
            }
        }
    }

    /// Adding a proxy to HRW only steals objects for the new proxy.
    #[test]
    fn hrw_growth_only_steals(n in 1u32..16, objects in prop::collection::vec(any::<u64>(), 1..200)) {
        let small = Hrw::new((0..n).map(ProxyId::new));
        let grown = Hrw::new((0..=n).map(ProxyId::new));
        for o in objects {
            let before = small.owner(ObjectId::new(o));
            let after = grown.owner(ObjectId::new(o));
            prop_assert!(after == before || after == ProxyId::new(n));
        }
    }

    /// The consistent ring is total and deterministic for any vnode
    /// count.
    #[test]
    fn ring_total(n in 1u32..16, vnodes in 1usize..64, objects in prop::collection::vec(any::<u64>(), 1..100)) {
        let ring = ConsistentRing::new((0..n).map(ProxyId::new), vnodes);
        for o in objects {
            let owner = ring.owner(ObjectId::new(o));
            prop_assert!(owner.raw() < n);
            prop_assert_eq!(owner, ring.owner(ObjectId::new(o)));
        }
    }

    /// Ring growth moves objects only toward the new proxy (consistent
    /// hashing's defining property).
    #[test]
    fn ring_growth_only_steals(n in 1u32..12, objects in prop::collection::vec(any::<u64>(), 1..150)) {
        let vnodes = 32;
        let small = ConsistentRing::new((0..n).map(ProxyId::new), vnodes);
        let grown = ConsistentRing::new((0..=n).map(ProxyId::new), vnodes);
        for o in objects {
            let before = small.owner(ObjectId::new(o));
            let after = grown.owner(ObjectId::new(o));
            prop_assert!(
                after == before || after == ProxyId::new(n),
                "object {o} moved {before} -> {after} on growth"
            );
        }
    }

    /// The bounded LRU never exceeds capacity and `contains` matches a
    /// naive model.
    #[test]
    fn bounded_lru_model(ops in prop::collection::vec((0u8..3, 0u64..20), 1..300), cap in 1usize..8) {
        let mut lru = BoundedLru::new(cap);
        let mut model: Vec<u64> = Vec::new(); // front = index 0 = MRU
        for (op, key) in ops {
            match op {
                0 => {
                    let evicted = lru.insert(ObjectId::new(key));
                    if let Some(pos) = model.iter().position(|&k| k == key) {
                        model.remove(pos);
                        model.insert(0, key);
                        prop_assert!(evicted.is_none());
                    } else {
                        model.insert(0, key);
                        if model.len() > cap {
                            let victim = model.pop().unwrap();
                            prop_assert_eq!(evicted, Some(ObjectId::new(victim)));
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                    }
                }
                1 => {
                    let touched = lru.touch(ObjectId::new(key));
                    let in_model = model.iter().position(|&k| k == key);
                    prop_assert_eq!(touched, in_model.is_some());
                    if let Some(pos) = in_model {
                        model.remove(pos);
                        model.insert(0, key);
                    }
                }
                _ => {
                    let removed = lru.remove(ObjectId::new(key));
                    let in_model = model.iter().position(|&k| k == key);
                    prop_assert_eq!(removed, in_model.is_some());
                    if let Some(pos) = in_model {
                        model.remove(pos);
                    }
                }
            }
            prop_assert!(lru.len() <= cap);
            prop_assert_eq!(lru.len(), model.len());
            let order: Vec<u64> = lru.iter().map(|o| o.raw()).collect();
            prop_assert_eq!(order, model.clone());
        }
    }
}
