//! # adc-sim
//!
//! A deterministic discrete-event simulator for cooperative proxy
//! systems: seeded clients inject a workload, proxies (any
//! [`adc_core::CacheAgent`] — ADC or a baseline) exchange messages over a
//! latency-modelled network, and an always-resolving origin server backs
//! the whole system. The simulator does the paper's accounting: hits are
//! requests served by any proxy cache, a hop is any message transfer
//! between distinct nodes, and hit/hop curves are 5000-request moving
//! averages.
//!
//! A run is a pure function of `(workload, agents, SimConfig)` — every
//! RNG is seeded, events are totally ordered, and repeated runs produce
//! identical reports (modulo wall-clock time).
//!
//! # Examples
//!
//! Simulate 5 ADC proxies against a small Polygraph-like workload:
//!
//! ```
//! use adc_core::{AdcConfig, AdcProxy, ProxyId};
//! use adc_sim::{SimConfig, Simulation};
//! use adc_workload::PolygraphConfig;
//!
//! let agents: Vec<AdcProxy> = (0..5)
//!     .map(|i| AdcProxy::new(ProxyId::new(i), 5, AdcConfig::default()))
//!     .collect();
//! let sim = Simulation::new(agents, SimConfig::fast());
//! let report = sim.run(PolygraphConfig::scaled(0.002).build());
//! assert_eq!(report.completed, PolygraphConfig::scaled(0.002).total_requests());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod cputime;
mod flows;
mod network;
mod pool;
mod queue;
mod report;
mod runner;
mod sharded;
mod time;
mod tracelog;

pub use config::{ChurnEvent, ClientAssignment, FaultPlan, InjectionMode, ShardTuning, SimConfig};
pub use cputime::thread_cpu_now;
pub use flows::FlowTable;
pub use network::LatencyModel;
pub use queue::CalendarQueue;
pub use report::{PhaseStats, ShardExecStats, ShardProfile, SimReport};
pub use runner::Simulation;
pub use time::SimTime;
pub use tracelog::{DeliveryRecord, TraceLog};

// Convergence sampling and metrics vocabulary, re-exported so simulator
// users can configure and read them without a direct `adc-obs`
// dependency.
pub use adc_obs::{
    ConvergenceConfig, ConvergenceReport, MetricsProbe, MetricsReport, ProxyMetricsSummary,
    SegmentKind, ShardSlice, SpanProbe, SpanReport,
};
