//! Simulation configuration.

use crate::network::LatencyModel;
use crate::time::SimTime;
use adc_core::ProxyId;
use adc_obs::ConvergenceConfig;
use serde::{Deserialize, Serialize};

/// How client requests enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InjectionMode {
    /// One outstanding request at a time: the next request is injected
    /// when the previous one completes. This mirrors replaying a request
    /// file through the system and keeps per-proxy clocks aligned with
    /// the global request order.
    #[default]
    Sequential,
    /// Open-loop arrivals at a fixed interval; flows overlap.
    OpenLoop {
        /// Inter-arrival time between consecutive requests.
        interval: SimTime,
    },
}

/// How a request's client is mapped to its first-hop proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClientAssignment {
    /// Client `c` always talks to proxy `c mod n` (Polygraph robots are
    /// pinned to proxies).
    #[default]
    Sticky,
    /// Every request picks a uniformly random first-hop proxy.
    RandomPerRequest,
}

/// Fault injection knobs. All default to off; the paper assumes a
/// loss-free network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability that any delivered message is delivered a second time
    /// (tests duplicate-suppression / orphan-reply handling).
    pub duplicate_prob: f64,
    /// Extra latency jitter applied to duplicated deliveries.
    pub duplicate_jitter: SimTime,
}

impl FaultPlan {
    /// Returns `true` when no faults are configured.
    pub fn is_clean(&self) -> bool {
        // Exact-zero sentinel means "faults disabled"; the value is only
        // ever set, never computed. adc-lint: allow(float-eq)
        self.duplicate_prob == 0.0
    }
}

/// A scheduled proxy restart: after `after_completed` requests have
/// finished, the proxy forgets all learned state (tables, cache,
/// pending).
///
/// The paper lists "changes of the infrastructure" as an unused
/// parameter; churn injection lets the ablation binaries study it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Number of completed requests after which the restart fires.
    pub after_completed: u64,
    /// The proxy to restart.
    pub proxy: ProxyId,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Network latencies.
    pub latency: LatencyModel,
    /// Arrival process.
    pub injection: InjectionMode,
    /// Client → first-hop proxy mapping.
    pub assignment: ClientAssignment,
    /// Fault injection.
    pub faults: FaultPlan,
    /// Scheduled proxy restarts (empty by default).
    pub churn: Vec<ChurnEvent>,
    /// When non-zero, record up to this many message deliveries in the
    /// report's [`TraceLog`](crate::TraceLog).
    pub trace_capacity: usize,
    /// Optional per-pair proxy↔proxy latencies (row = sender, column =
    /// receiver), overriding the class model's uniform `proxy_proxy`
    /// value — e.g. two LAN clusters joined by a WAN link. Must be a
    /// square matrix matching the proxy count.
    pub proxy_latency_matrix: Option<Vec<Vec<SimTime>>>,
    /// Window length for moving-average series (the paper uses 5000).
    pub hit_window: usize,
    /// Keep one series point per this many completed requests.
    pub sample_every: u64,
    /// Record per-proxy cache-occupancy series. On by default; sweep
    /// runs turn it off since their outputs never read occupancy and the
    /// per-completion sampling of every proxy costs measurable time.
    pub sample_occupancy: bool,
    /// When set, periodically snapshot every agent's
    /// [`owner_hint`](adc_core::CacheAgent::owner_hint) for the hottest
    /// objects and report cluster-wide mapping agreement, remaps and
    /// churn as a [`ConvergenceReport`](adc_obs::ConvergenceReport). Off
    /// (`None`) by default — the sampling walks every agent once per
    /// interval, so it is opt-in like tracing.
    pub convergence: Option<ConvergenceConfig>,
    /// Seed for all simulator-side randomness (agent RNG, assignment,
    /// faults). A run is a pure function of (workload, agents, config).
    pub seed: u64,
    /// Synchronization tuning for
    /// [`Simulation::run_sharded`](crate::Simulation::run_sharded).
    /// Pure execution strategy: every combination of knobs produces
    /// byte-identical reports (the knobs trade synchronization overhead
    /// against parallelism), so the single-threaded runner ignores this
    /// field entirely.
    pub shard: ShardTuning,
}

/// Tuning knobs for the sharded executor's synchronization layer. The
/// defaults are the fast path; the individual switches exist so the
/// differential tests can pin each mechanism on and off and prove the
/// report bytes never move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTuning {
    /// Worker threads for the persistent pool, spawned once per run —
    /// lazily, on the first window with more than one active shard.
    /// `None` sizes the pool to the machine (`min(cores, shards) - 1`;
    /// the coordinator always executes shards too, so a single-core
    /// host degrades to inline execution with zero thread overhead).
    /// `Some(0)` forces fully inline execution; `Some(k)` forces `k`
    /// workers regardless of the core count.
    pub pool_threads: Option<usize>,
    /// Adaptive window widening: when no shard can produce a
    /// cross-shard message before the next grid barrier, jump the
    /// barrier straight to the lookahead-aligned window containing the
    /// earliest possible cross-shard send instead of stepping one
    /// window at a time (conservatism argument in DESIGN.md §6c).
    pub widen: bool,
    /// Fold completion records on the coordinator every this many
    /// barriers instead of at every barrier, in runs where nothing
    /// observes per-window state (see DESIGN.md §6c for the exact
    /// gating). `0` and `1` both mean "fold every barrier".
    pub fold_batch: u32,
    /// Collect the wall-clock execution profile
    /// ([`SimReport::shard_profile`](crate::SimReport::shard_profile)):
    /// per-shard drain times, coordinator barrier-wait time,
    /// window-occupancy and outbox-depth histograms, and chrome-trace
    /// lane slices. Pure measurement — the deterministic report bytes
    /// never move — but each window pays a few clock reads, so it is
    /// off by default.
    pub profile: bool,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            pool_threads: None,
            widen: true,
            fold_batch: 16,
            profile: false,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::default(),
            injection: InjectionMode::default(),
            assignment: ClientAssignment::default(),
            faults: FaultPlan::default(),
            churn: Vec::new(),
            trace_capacity: 0,
            proxy_latency_matrix: None,
            hit_window: 5_000,
            sample_every: 5_000,
            sample_occupancy: true,
            convergence: None,
            seed: 0xADC0_5EED,
            shard: ShardTuning::default(),
        }
    }
}

impl SimConfig {
    /// A configuration tuned for fast tests: instant network, small
    /// windows.
    pub fn fast() -> Self {
        SimConfig {
            latency: LatencyModel::instant(),
            hit_window: 500,
            sample_every: 500,
            ..SimConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.hit_window == 0 {
            return Err("hit_window must be positive".into());
        }
        if self.sample_every == 0 {
            return Err("sample_every must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.faults.duplicate_prob) {
            return Err("duplicate_prob must be in [0, 1]".into());
        }
        if let Some(matrix) = &self.proxy_latency_matrix {
            if matrix.iter().any(|row| row.len() != matrix.len()) {
                return Err("proxy_latency_matrix must be square".into());
            }
        }
        if let Some(conv) = &self.convergence {
            if conv.sample_every == 0 {
                return Err("convergence.sample_every must be positive".into());
            }
            if conv.top_k == 0 {
                return Err("convergence.top_k must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_measurement_setup() {
        let c = SimConfig::default();
        assert_eq!(c.hit_window, 5_000);
        assert_eq!(c.injection, InjectionMode::Sequential);
        assert!(c.faults.is_clean());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = SimConfig {
            hit_window: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            sample_every: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.faults.duplicate_prob = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fast_config_is_valid() {
        assert!(SimConfig::fast().validate().is_ok());
    }

    #[test]
    fn convergence_config_validated() {
        let mut c = SimConfig {
            convergence: Some(ConvergenceConfig::default()),
            ..SimConfig::default()
        };
        assert!(c.validate().is_ok());
        c.convergence = Some(ConvergenceConfig {
            sample_every: 0,
            top_k: 8,
        });
        assert!(c.validate().is_err());
        c.convergence = Some(ConvergenceConfig {
            sample_every: 100,
            top_k: 0,
        });
        assert!(c.validate().is_err());
    }
}
