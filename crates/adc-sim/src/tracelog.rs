//! Optional event tracing: a bounded log of every message delivery,
//! for debugging and for tests that verify path-level properties (e.g.
//! that backwarding exactly retraces the forwarding path).

use crate::time::SimTime;
use adc_core::{NodeId, RequestId};
use serde::{Deserialize, Serialize};

/// One recorded message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Simulated time of delivery.
    pub at: SimTime,
    /// The flow this message belongs to.
    pub request: RequestId,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// `true` for a request message, `false` for a reply.
    pub is_request: bool,
}

/// A bounded delivery log; recording stops silently once `capacity`
/// events have been captured (the bound keeps multi-million-request runs
/// usable with tracing left on).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    records: Vec<DeliveryRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// The hard upper bound on stored records (2^20). Requests for a
    /// larger log are clamped to this, so a `TraceLog` never holds more
    /// than ~32 MiB of records regardless of the configured
    /// `trace_capacity`; everything past the bound is counted in
    /// [`dropped`](TraceLog::dropped) rather than stored.
    pub const MAX_CAPACITY: usize = 1 << 20;

    /// Creates a log bounded to `min(capacity, MAX_CAPACITY)` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.min(Self::MAX_CAPACITY);
        TraceLog {
            records: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The effective record bound (after clamping to
    /// [`MAX_CAPACITY`](TraceLog::MAX_CAPACITY)).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a delivery (drops it silently when full).
    pub fn record(&mut self, record: DeliveryRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// All captured records, in delivery order.
    pub fn records(&self) -> &[DeliveryRecord] {
        &self.records
    }

    /// Number of deliveries that arrived after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The deliveries of one flow, in order.
    pub fn flow(&self, request: RequestId) -> Vec<DeliveryRecord> {
        self.records
            .iter()
            .filter(|r| r.request == request)
            .copied()
            .collect()
    }

    /// Checks the backwarding invariant for `request`: the reply path
    /// visits the forward path's nodes in exact reverse order.
    ///
    /// Returns `false` for incomplete flows (e.g. truncated by the log
    /// bound).
    pub fn backwarding_retraces_forwarding(&self, request: RequestId) -> bool {
        let flow = self.flow(request);
        if flow.is_empty() {
            return false;
        }
        let forward: Vec<(NodeId, NodeId)> = flow
            .iter()
            .filter(|r| r.is_request)
            .map(|r| (r.from, r.to))
            .collect();
        let backward: Vec<(NodeId, NodeId)> = flow
            .iter()
            .filter(|r| !r.is_request)
            .map(|r| (r.from, r.to))
            .collect();
        if forward.len() != backward.len() {
            return false;
        }
        // Each backward edge must be the reverse of the corresponding
        // forward edge, in reverse order.
        forward
            .iter()
            .rev()
            .zip(backward.iter())
            .all(|(&(ffrom, fto), &(bfrom, bto))| ffrom == bto && fto == bfrom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{ClientId, ProxyId};

    fn delivery(seq: u64, from: NodeId, to: NodeId, is_request: bool) -> DeliveryRecord {
        DeliveryRecord {
            at: SimTime::from_micros(seq),
            request: RequestId::new(ClientId::new(0), 1),
            from,
            to,
            is_request,
        }
    }

    fn client() -> NodeId {
        NodeId::Client(ClientId::new(0))
    }

    fn proxy(i: u32) -> NodeId {
        NodeId::Proxy(ProxyId::new(i))
    }

    #[test]
    fn bounded_capacity() {
        let mut log = TraceLog::new(2);
        assert_eq!(log.capacity(), 2);
        for i in 0..5 {
            log.record(delivery(i, client(), proxy(0), true));
        }
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn oversized_capacity_is_clamped() {
        // A request far beyond the bound must clamp the *accounting*
        // capacity, not just the pre-allocation — the log previously kept
        // the raw value and would have grown unbounded past 2^20.
        let log = TraceLog::new(usize::MAX);
        assert_eq!(log.capacity(), TraceLog::MAX_CAPACITY);
        let log = TraceLog::new(TraceLog::MAX_CAPACITY + 1);
        assert_eq!(log.capacity(), TraceLog::MAX_CAPACITY);
        // At or below the bound the request is honoured exactly.
        let log = TraceLog::new(TraceLog::MAX_CAPACITY);
        assert_eq!(log.capacity(), TraceLog::MAX_CAPACITY);
    }

    #[test]
    fn drop_accounting_at_the_boundary() {
        // Fill to exactly capacity: nothing drops.
        let mut log = TraceLog::new(3);
        for i in 0..3 {
            log.record(delivery(i, client(), proxy(0), true));
        }
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.dropped(), 0);
        // The first record past the bound is the first drop.
        log.record(delivery(3, client(), proxy(0), true));
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn symmetric_flow_validates() {
        let mut log = TraceLog::new(64);
        // C → P0 → P1 → O, then O → P1 → P0 → C.
        log.record(delivery(0, client(), proxy(0), true));
        log.record(delivery(1, proxy(0), proxy(1), true));
        log.record(delivery(2, proxy(1), NodeId::Origin, true));
        log.record(delivery(3, NodeId::Origin, proxy(1), false));
        log.record(delivery(4, proxy(1), proxy(0), false));
        log.record(delivery(5, proxy(0), client(), false));
        let id = RequestId::new(ClientId::new(0), 1);
        assert!(log.backwarding_retraces_forwarding(id));
        assert_eq!(log.flow(id).len(), 6);
    }

    #[test]
    fn asymmetric_flow_fails_validation() {
        let mut log = TraceLog::new(64);
        // Reply skips proxy 1 (a CARP-style direct return).
        log.record(delivery(0, client(), proxy(0), true));
        log.record(delivery(1, proxy(0), proxy(1), true));
        log.record(delivery(2, proxy(1), client(), false));
        let id = RequestId::new(ClientId::new(0), 1);
        assert!(!log.backwarding_retraces_forwarding(id));
    }

    #[test]
    fn unknown_flow_fails() {
        let log = TraceLog::new(4);
        assert!(!log.backwarding_retraces_forwarding(RequestId::new(ClientId::new(9), 9)));
    }
}
