//! The network latency model.
//!
//! Latencies shape reported response times and the interleaving of
//! concurrent flows; hit and hop counts are latency-independent, which is
//! why the paper could validate its single-host runs against the
//! distributed testbed.

use crate::time::SimTime;
use adc_core::NodeId;
use serde::{Deserialize, Serialize};

/// One-way latencies between node classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Client ↔ proxy latency (LAN).
    pub client_proxy: SimTime,
    /// Proxy ↔ proxy latency (LAN or metro).
    pub proxy_proxy: SimTime,
    /// Proxy ↔ origin latency (WAN).
    pub proxy_origin: SimTime,
    /// Service time the origin spends per request.
    pub origin_service: SimTime,
}

impl Default for LatencyModel {
    /// A LAN proxy farm in front of a WAN origin: 1 ms client–proxy,
    /// 2 ms proxy–proxy, 40 ms to the origin, 2 ms origin service time.
    fn default() -> Self {
        LatencyModel {
            client_proxy: SimTime::from_millis(1),
            proxy_proxy: SimTime::from_millis(2),
            proxy_origin: SimTime::from_millis(40),
            origin_service: SimTime::from_millis(2),
        }
    }
}

impl LatencyModel {
    /// A zero-latency model: every transfer is instantaneous. Useful for
    /// pure hit/hop studies and fast tests.
    pub fn instant() -> Self {
        LatencyModel {
            client_proxy: SimTime::ZERO,
            proxy_proxy: SimTime::ZERO,
            proxy_origin: SimTime::ZERO,
            origin_service: SimTime::ZERO,
        }
    }

    /// One-way latency for a transfer from `from` to `to`.
    ///
    /// A node sending to itself costs nothing (no network transfer).
    pub fn latency(&self, from: NodeId, to: NodeId) -> SimTime {
        use NodeId::*;
        if from == to {
            return SimTime::ZERO;
        }
        match (from, to) {
            (Client(_), Proxy(_)) | (Proxy(_), Client(_)) => self.client_proxy,
            (Proxy(_), Proxy(_)) => self.proxy_proxy,
            (Proxy(_), Origin) | (Origin, Proxy(_)) => self.proxy_origin,
            // Clients never talk to the origin directly in this system,
            // but give the path a sane cost anyway.
            (Client(_), Origin) | (Origin, Client(_)) => self.proxy_origin,
            (Client(_), Client(_)) => self.client_proxy,
            (Origin, Origin) => SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{ClientId, ProxyId};

    fn client() -> NodeId {
        NodeId::Client(ClientId::new(0))
    }

    fn proxy(i: u32) -> NodeId {
        NodeId::Proxy(ProxyId::new(i))
    }

    #[test]
    fn class_latencies() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(client(), proxy(0)), m.client_proxy);
        assert_eq!(m.latency(proxy(0), client()), m.client_proxy);
        assert_eq!(m.latency(proxy(0), proxy(1)), m.proxy_proxy);
        assert_eq!(m.latency(proxy(0), NodeId::Origin), m.proxy_origin);
        assert_eq!(m.latency(NodeId::Origin, proxy(0)), m.proxy_origin);
    }

    #[test]
    fn self_transfer_is_free() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(proxy(3), proxy(3)), SimTime::ZERO);
    }

    #[test]
    fn instant_model_is_all_zero() {
        let m = LatencyModel::instant();
        assert_eq!(m.latency(client(), proxy(0)), SimTime::ZERO);
        assert_eq!(m.latency(proxy(0), NodeId::Origin), SimTime::ZERO);
        assert_eq!(m.origin_service, SimTime::ZERO);
    }
}
