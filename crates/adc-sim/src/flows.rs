//! A slab-backed flow table: per-request bookkeeping without per-flow
//! hashing or allocation.
//!
//! The workload generators stamp every [`RequestRecord`] with a globally
//! unique, monotone `seq` (its position in the trace), and the simulator
//! injects flows in exactly that order. Live flows therefore occupy a
//! dense, sliding window of `seq` values, which a ring of slot indices
//! tracks directly — `O(1)` insert, lookup, and remove with no hashing in
//! the steady state. Flows whose `seq` has fallen behind the window base
//! (possible only after pathological reordering) spill into a small
//! overflow map so correctness never depends on the density assumption.
//!
//! [`RequestRecord`]: adc_workload::RequestRecord

use adc_core::RequestId;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A slab of flow states indexed by workload-unique request `seq`.
#[derive(Debug)]
pub struct FlowTable<V> {
    /// Slot storage; freed slots are recycled through `free`.
    slots: Vec<(RequestId, V)>,
    free: Vec<u32>,
    /// `window[id.seq - base]` holds `slot + 1`, or 0 for no flow.
    window: VecDeque<u32>,
    /// The `seq` the window's front corresponds to.
    base: u64,
    /// Flows outside the window (never hit on the simulator's in-order
    /// injection pattern). Ordered map: off the hot path, and iteration
    /// order must never depend on a randomized hasher.
    overflow: BTreeMap<RequestId, u32>,
    len: usize,
    peak: usize,
}

impl<V> Default for FlowTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlowTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable {
            slots: Vec::new(),
            free: Vec::new(),
            window: VecDeque::new(),
            base: 0,
            overflow: BTreeMap::new(),
            len: 0,
            peak: 0,
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flows are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of flows ever live at once.
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn alloc(&mut self, id: RequestId, value: V) -> u32 {
        self.len += 1;
        self.peak = self.peak.max(self.len);
        match self.free.pop() {
            Some(slot) => {
                // Free-list entries always index live slot storage.
                self.slots[slot as usize] = (id, value);
                slot
            }
            None => {
                self.slots.push((id, value));
                // Slot count is bounded by live flows, far below u32::MAX.
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Inserts a flow. `id.seq` values must be unique across live flows
    /// (the workload's global trace position guarantees this).
    pub fn insert(&mut self, id: RequestId, value: V) {
        if self.window.is_empty() {
            self.base = id.seq;
        }
        if id.seq < self.base {
            let slot = self.alloc(id, value);
            self.overflow.insert(id, slot);
            return;
        }
        // Window span tracks live flows, so the offset fits in memory.
        let offset = (id.seq - self.base) as usize;
        if self.window.len() <= offset {
            self.window.resize(offset + 1, 0);
        }
        debug_assert_eq!(
            // resize() above guarantees offset is in bounds.
            self.window[offset],
            0,
            "seq {} already has a live flow (seqs must be unique)",
            id.seq
        );
        let slot = self.alloc(id, value);
        // resize() above guarantees offset is in bounds.
        self.window[offset] = slot + 1;
        debug_assert!(
            self.window.front().is_some_and(|&s| s != 0) || self.base == id.seq,
            "window front must stay live after insert"
        );
    }

    fn slot_of(&self, id: &RequestId) -> Option<u32> {
        if id.seq >= self.base {
            // Offset fits: the window never outgrows the live flow span.
            let offset = (id.seq - self.base) as usize;
            match self.window.get(offset).copied() {
                // Nonzero window entries always point at a live slot.
                Some(s) if s != 0 && self.slots[(s - 1) as usize].0 == *id => {
                    return Some(s - 1);
                }
                _ => {}
            }
        }
        // Fall back to the overflow map even for seqs at or above the
        // base: window compaction can move the base below an overflowed
        // seq (e.g. after the window empties and the base resets).
        self.overflow.get(id).copied()
    }

    /// Borrows the flow for `id`.
    pub fn get(&self, id: &RequestId) -> Option<&V> {
        self.slot_of(id).map(|s| &self.slots[s as usize].1)
    }

    /// Mutably borrows the flow for `id`.
    pub fn get_mut(&mut self, id: &RequestId) -> Option<&mut V> {
        self.slot_of(id).map(|s| &mut self.slots[s as usize].1)
    }

    /// Removes and returns the flow for `id`.
    pub fn remove(&mut self, id: &RequestId) -> Option<V>
    where
        V: Copy,
    {
        let window_slot = if id.seq >= self.base {
            // Offset fits: the window never outgrows the live flow span.
            let offset = (id.seq - self.base) as usize;
            match self.window.get(offset).copied() {
                // Nonzero window entries always point at a live slot.
                Some(s) if s != 0 && self.slots[(s - 1) as usize].0 == *id => {
                    self.window[offset] = 0;
                    // Completed flows at the front shrink the window so
                    // it tracks the live range, not the whole trace.
                    while let Some(&0) = self.window.front() {
                        self.window.pop_front();
                        self.base += 1;
                    }
                    if self.window.is_empty() {
                        self.base = 0;
                    }
                    debug_assert!(
                        self.window.front().is_none_or(|&s| s != 0),
                        "window front must be live after compaction"
                    );
                    Some(s - 1)
                }
                _ => None,
            }
        } else {
            None
        };
        // As in slot_of: an overflowed seq can sit at or above the base
        // after compaction resets it, so the window miss is not final.
        let slot = match window_slot {
            Some(s) => s,
            None => self.overflow.remove(id)?,
        };
        debug_assert!(self.len > 0, "freed a slot with no live flows");
        self.free.push(slot);
        self.len -= 1;
        // Slot was just resolved from the window/overflow, so in bounds.
        Some(self.slots[slot as usize].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::ClientId;

    fn id(client: u32, seq: u64) -> RequestId {
        RequestId::new(ClientId::new(client), seq)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = FlowTable::new();
        t.insert(id(0, 0), 'a');
        t.insert(id(1, 1), 'b');
        t.insert(id(0, 2), 'c');
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&id(1, 1)), Some(&'b'));
        assert_eq!(t.get(&id(1, 3)), None);
        assert_eq!(t.remove(&id(1, 1)), Some('b'));
        assert_eq!(t.remove(&id(1, 1)), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.peak(), 3);
    }

    #[test]
    fn mismatched_client_with_same_seq_misses() {
        let mut t = FlowTable::new();
        t.insert(id(0, 7), 1u32);
        assert_eq!(t.get(&id(1, 7)), None);
        assert_eq!(t.remove(&id(1, 7)), None);
        assert_eq!(t.get(&id(0, 7)), Some(&1));
    }

    #[test]
    fn window_slides_and_slots_recycle() {
        let mut t = FlowTable::new();
        // Sequential inject/complete like the closed-loop simulator.
        for seq in 0..10_000u64 {
            t.insert(id((seq % 5) as u32, seq), seq);
            assert_eq!(t.remove(&id((seq % 5) as u32, seq)), Some(seq));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.peak(), 1);
        // One slot and an empty window serve the whole trace.
        assert!(t.slots.len() <= 1, "slots grew: {}", t.slots.len());
        assert!(t.window.len() <= 1, "window grew: {}", t.window.len());
    }

    #[test]
    fn out_of_order_completion_keeps_window_bounded() {
        let mut t = FlowTable::new();
        // Open-loop style: up to 64 flows in flight, completing in a
        // scrambled order.
        let mut live: Vec<u64> = Vec::new();
        for seq in 0..5_000u64 {
            t.insert(id(0, seq), seq * 2);
            live.push(seq);
            if live.len() == 64 {
                // Complete a middle one, the oldest, and the newest.
                for pick in [32, 0, live.len() - 1] {
                    let s = live.remove(pick.min(live.len() - 1));
                    assert_eq!(t.remove(&id(0, s)), Some(s * 2));
                }
            }
        }
        for &s in &live {
            assert_eq!(t.remove(&id(0, s)), Some(s * 2));
        }
        assert!(t.is_empty());
        assert_eq!(t.peak(), 64);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = FlowTable::new();
        t.insert(id(3, 9), 10u32);
        *t.get_mut(&id(3, 9)).unwrap() += 5;
        assert_eq!(t.remove(&id(3, 9)), Some(15));
    }

    #[test]
    fn overflow_survives_base_reset() {
        let mut t = FlowTable::new();
        t.insert(id(0, 100), 'x');
        t.insert(id(0, 50), 'y'); // overflow, behind base 100
                                  // Removing the only windowed flow empties the window and resets
                                  // the base to 0; seq 50 now compares >= base but must still be
                                  // found in the overflow map.
        assert_eq!(t.remove(&id(0, 100)), Some('x'));
        assert_eq!(t.get(&id(0, 50)), Some(&'y'));
        assert_eq!(t.remove(&id(0, 50)), Some('y'));
        assert!(t.is_empty());
    }

    #[test]
    fn pre_window_seq_goes_to_overflow() {
        let mut t = FlowTable::new();
        t.insert(id(0, 100), 'x');
        t.insert(id(0, 50), 'y'); // behind the window base
        assert_eq!(t.get(&id(0, 50)), Some(&'y'));
        assert_eq!(t.remove(&id(0, 50)), Some('y'));
        assert_eq!(t.remove(&id(0, 100)), Some('x'));
        assert!(t.is_empty());
    }
}
