//! Sharded (multi-core) execution of the simulation.
//!
//! Proxies are partitioned round-robin across `N` worker shards (proxy
//! `p` lives on shard `p % N`). Each shard owns its own calendar queue,
//! slab flow table and RNG stream, and the run proceeds in fixed time
//! windows of width `W` — the *lookahead bound*: the minimum configured
//! network latency over every edge that can carry a cross-shard message
//! (client→proxy plus the proxy↔proxy minimum; origin round trips and
//! client deliveries are processed on the sending proxy's shard, so they
//! never cross shards). Within a window `[T, T + W)` every shard drains
//! its local queue independently: any message produced inside the window
//! is either shard-local (arbitrary latency, including zero-latency
//! self-sends) or crosses shards with latency `≥ W`, hence lands at or
//! after the barrier `T + W`. Cross-shard messages accumulate in
//! per-destination outboxes and are routed at the barrier, so the merged
//! event schedule is a pure function of `(workload, agents, config)` —
//! independent of the shard count and of thread scheduling.
//!
//! # Determinism
//!
//! Three mechanisms make `shards=N` byte-identical to `shards=1`:
//!
//! 1. **Content-derived event keys.** The single-threaded runner breaks
//!    `at` ties with a global push counter; a per-shard counter would
//!    depend on the partitioning. Here every queued event carries the key
//!    `(flow seq << 16) | step`, where `step` counts the flow's hops so
//!    far — unique per event and identical under any partitioning, so
//!    per-shard pop order and the barrier merge order are shard-count
//!    invariant.
//! 2. **Canonical completion folding.** Workers only record completions;
//!    the coordinator folds them at each barrier in `(at, flow seq)`
//!    order and performs all cross-shard accounting there (series,
//!    quantiles, convergence snapshots, metrics, sequential
//!    re-injection), exactly as the single-threaded loop would.
//! 3. **Mode-appropriate RNG streams.** Sequential injection has at most
//!    one live event in the whole system, so all shards share the
//!    single-threaded runner's agent RNG (behind an uncontended mutex)
//!    and draw in exactly the legacy order — sharded sequential runs are
//!    *byte-identical to [`Simulation::run`]*. Open-loop injection
//!    interleaves flows, so each agent gets an independent stream seeded
//!    from `(seed, proxy id)`; reports are then invariant in the shard
//!    count (but intentionally not comparable to the single-queue
//!    runner, whose tie order depends on push order).
//!
//! In open-loop mode, occupancy/convergence/metrics sampling reads agent
//! state at the enclosing barrier rather than at the completion instant
//! (they coincide in sequential mode); `events_processed` counts the
//! injection events the single-threaded loop would have popped, so the
//! field reconciles across executors.
//!
//! # Synchronization layer
//!
//! Three mechanisms amortize the barrier cost (all tunable through
//! [`ShardTuning`](crate::ShardTuning); every setting produces identical
//! report bytes):
//!
//! 1. **Persistent worker pool** ([`pool`](crate::pool) module): shard
//!    threads are spawned at most once per run — lazily, on the first
//!    window with more than one active shard — and windows are dispatched
//!    through a sense-reversing barrier with a claim cursor, instead of
//!    spawning fresh OS threads every window. On a single-core host the
//!    pool sizes itself to zero workers and every window runs inline on
//!    the coordinator.
//! 2. **Adaptive window widening**: each shard maintains counts of its
//!    pending proxy-bound and origin-bound events, from which the
//!    coordinator derives a conservative lower bound on the earliest
//!    possible cross-shard *send* (proxy-bound work can send immediately;
//!    origin-bound work cannot reach a proxy again before the
//!    origin→proxy reply latency; client-bound deliveries never spawn
//!    anything). When the global minimum bound `S_min` lies beyond the
//!    next grid barrier, the window extends straight to the grid barrier
//!    after `S_min` — every cross-shard delivery still lands at
//!    `≥ S_min + W ≥` that barrier, so the lookahead argument is intact
//!    (full proof in DESIGN.md §6c). Widening changes *barrier
//!    placement*, which is observable only by barrier-driven state
//!    sampling (occupancy series, convergence snapshots, metrics
//!    probes) in open-loop mode — sequential windows hold at most one
//!    completion, so sequential folds see identical agent state — and is
//!    therefore automatically disabled in exactly those runs.
//! 3. **Batched coordinator folds**: completions accumulate in reusable
//!    per-shard buffers and fold every `fold_batch` barriers. The fold
//!    replays the same `(at, flow_seq)`-sorted global sequence with the
//!    same injection-settling tie rule whatever the batching, so it is
//!    enabled under the same gate as widening (and never in sequential
//!    mode, whose folds drive re-injection).
//!
//! # Unsupported configurations
//!
//! Fault injection, churn and delivery tracing are rejected (see
//! [`Simulation::run_sharded`]): duplicates and restarts would need
//! cross-shard coordination mid-window, and the trace log is inherently
//! a single totally-ordered stream.

use crate::config::{ClientAssignment, InjectionMode, SimConfig};
use crate::flows::FlowTable;
use crate::network::LatencyModel;
use crate::pool::{self, WindowTask};
use crate::queue::CalendarQueue;
use crate::report::{PhaseStats, ShardExecStats, ShardProfile, SimReport};
use crate::runner::Simulation;
use crate::time::SimTime;
use adc_core::{
    Action, ActionSink, CacheAgent, Message, NodeId, ObjectId, ProxyId, Reply, Request, RequestId,
};
use adc_metrics::{Log2Histogram, MovingAverage, P2Quantile, Registry, Sampler, Summary};
use adc_obs::{ConvergenceConfig, ConvergenceTracker, MetricsProbe, NullProbe, Probe};
use adc_obs::{MetricsReport, ShardSlice, SimEvent};
use adc_workload::{Phase, RequestRecord};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
// Wall-clock time feeds report telemetry only, never simulation
// state. adc-lint: allow(determinism)
use std::time::Instant;

/// Bits of the event key reserved for the per-flow step counter.
const STEP_BITS: u32 = 16;

/// The default occupancy-sampling cadence, matching
/// [`Simulation::run_with_metrics`] (which uses `MetricsProbe::new()`).
const METRICS_CADENCE: u64 = adc_obs::metrics::DEFAULT_CADENCE;

/// The canonical, shard-invariant queue key of a flow's `step`-th event.
fn event_key(flow_seq: u64, step: u32) -> u64 {
    debug_assert!(
        flow_seq < (1 << (64 - STEP_BITS)),
        "workload seq {flow_seq} overflows the event key"
    );
    (flow_seq << STEP_BITS) | u64::from(step)
}

/// Per-flow bookkeeping, resident in the shard holding the flow's single
/// in-flight message (clean-fault runs have exactly one).
#[derive(Debug, Clone, Copy)]
struct FlowMeta {
    start: SimTime,
    hops: u32,
    /// Events this flow has generated so far; the tie-breaking half of
    /// the event key. Bounded by hop limits far below `2^16`.
    step: u32,
    size: u32,
    phase: Phase,
}

/// One in-flight delivery.
#[derive(Debug, Clone, Copy)]
struct ShardEvent {
    from: NodeId,
    to: NodeId,
    message: Message,
}

/// A delivery crossing shards, carried through a barrier outbox.
#[derive(Debug, Clone, Copy)]
struct Routed {
    at: u64,
    key: u64,
    ev: ShardEvent,
    meta: FlowMeta,
}

/// A completed flow, recorded by a worker and folded on the coordinator.
#[derive(Debug, Clone, Copy)]
struct Completion {
    at: u64,
    /// The flow's workload seq: the canonical fold tiebreaker.
    flow_seq: u64,
    hit: bool,
    /// Serving proxy for hit flows (`None` = origin-served) — exact
    /// attribution from the reply's `served_from`.
    server: Option<u32>,
    hops: u32,
    start_us: u64,
    phase: Phase,
}

/// The latency function shared (immutably) by all workers; mirrors the
/// single-threaded runner's closure exactly.
struct Net {
    base: LatencyModel,
    matrix: Option<Vec<Vec<SimTime>>>,
    /// Shard count, for ownership tests during routing.
    shards: usize,
}

impl Net {
    fn latency(&self, from: NodeId, to: NodeId) -> SimTime {
        if let (Some(m), NodeId::Proxy(a), NodeId::Proxy(b)) = (&self.matrix, from, to) {
            if a != b {
                // Matrix is n×n over dense proxy ids (checked in new()).
                return m[a.raw() as usize][b.raw() as usize];
            }
        }
        self.base.latency(from, to)
    }

    /// Shard owning proxy `p` (round-robin partitioning).
    fn shard_of(&self, p: ProxyId) -> usize {
        // Dense proxy ids fit usize on every supported target.
        p.raw() as usize % self.shards
    }
}

/// The conservative lookahead bound `W` in microseconds: the minimum
/// latency over the edges that can carry a message whose production and
/// delivery live on different shards (client→proxy for injections,
/// proxy↔proxy for forwards). Origin hops are shard-local and do not
/// constrain `W`.
fn lookahead_us(config: &SimConfig, proxies: usize) -> u64 {
    let mut w = config.latency.client_proxy.as_micros();
    if proxies > 1 {
        match &config.proxy_latency_matrix {
            Some(m) => {
                for (a, row) in m.iter().enumerate() {
                    for (b, cell) in row.iter().enumerate() {
                        if a != b {
                            w = w.min(cell.as_micros());
                        }
                    }
                }
            }
            None => w = w.min(config.latency.proxy_proxy.as_micros()),
        }
    }
    w
}

/// The probe features the sharded executor needs beyond [`Probe`]: shard
/// construction, barrier-driven occupancy sampling, and registry
/// extraction for the exact shard merge. Composes over probe pairs like
/// `Probe` itself does.
trait ShardProbe: Probe + Send {
    /// A fresh per-shard probe.
    fn for_shard() -> Self;
    /// Samples whatever the probe samples on the cluster-wide cadence
    /// (driven by the coordinator; shards never observe completions).
    fn barrier_sample(&mut self);
    /// The shard's accumulated registry, if it keeps one.
    fn into_registry(self) -> Option<Registry>;
}

impl ShardProbe for NullProbe {
    fn for_shard() -> Self {
        NullProbe
    }
    fn barrier_sample(&mut self) {}
    fn into_registry(self) -> Option<Registry> {
        None
    }
}

impl ShardProbe for MetricsProbe {
    fn for_shard() -> Self {
        // Cadence 0: the coordinator drives occupancy sampling on the
        // cluster-wide completion count via barrier_sample.
        MetricsProbe::with_cadence(0)
    }
    fn barrier_sample(&mut self) {
        self.sample_occupancy_now();
    }
    fn into_registry(self) -> Option<Registry> {
        Some(self.into_registry())
    }
}

impl<X: ShardProbe, Y: ShardProbe> ShardProbe for (X, Y) {
    fn for_shard() -> Self {
        (X::for_shard(), Y::for_shard())
    }
    fn barrier_sample(&mut self) {
        self.0.barrier_sample();
        self.1.barrier_sample();
    }
    fn into_registry(self) -> Option<Registry> {
        match (self.0.into_registry(), self.1.into_registry()) {
            (Some(mut a), Some(b)) => {
                a.merge(&b);
                Some(a)
            }
            (a, b) => a.or(b),
        }
    }
}

/// A shared view of the single-threaded runner's agent RNG stream, used
/// in sequential mode where at most one event is live in the whole
/// system — the lock is never contended, it only satisfies `Sync`.
#[derive(Debug, Clone)]
struct SharedRng(Arc<Mutex<StdRng>>);

impl SharedRng {
    fn lock(&mut self) -> std::sync::MutexGuard<'_, StdRng> {
        // A worker panic aborts the scope anyway; the state itself is
        // never left inconsistent mid-draw.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl RngCore for SharedRng {
    fn next_u32(&mut self) -> u32 {
        self.lock().next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.lock().next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.lock().fill_bytes(dest);
    }
}

/// SplitMix64: decorrelates per-agent seeds derived from (seed, proxy).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mode-appropriate agent RNG stream(s) for one shard.
enum AgentRngs {
    /// Sequential: all shards share the legacy stream (see above).
    Shared(SharedRng),
    /// Open-loop: one independent stream per local agent.
    PerAgent(Vec<StdRng>),
}

/// Per-delivery counters a worker accumulates; summed at report time
/// (every field is a pure event count, so addition is the exact merge —
/// see `SimReport`'s field docs for max-vs-sum semantics).
#[derive(Debug, Default, Clone, Copy)]
struct ShardCounters {
    events_processed: u64,
    messages_delivered: u64,
    bytes_from_origin: u64,
    bytes_from_caches: u64,
    client_orphans: u64,
    orphan_origin_requests: u64,
}

impl ShardCounters {
    /// Element-wise sum, the merge all pure event counts use.
    fn merge(&mut self, other: &ShardCounters) {
        self.events_processed += other.events_processed;
        self.messages_delivered += other.messages_delivered;
        self.bytes_from_origin += other.bytes_from_origin;
        self.bytes_from_caches += other.bytes_from_caches;
        self.client_orphans += other.client_orphans;
        self.orphan_origin_requests += other.orphan_origin_requests;
    }
}

/// Per-shard half of the execution profiler
/// ([`ShardTuning::profile`](crate::ShardTuning::profile)): wall-clock
/// drain accounting, the window-occupancy histogram, and chrome-trace
/// drain slices. Boxed behind an `Option` so the unprofiled hot path
/// pays one null test per window and nothing per event.
struct ShardProfState {
    /// Shared zero point for chrome-trace lane offsets (the run's
    /// `wall_start`).
    run_start: Instant,
    /// Cumulative wall-clock drain time, nanoseconds.
    drain_ns: u64,
    /// Window drains executed (including empty drains).
    windows: u64,
    /// Events processed by this shard.
    events: u64,
    /// Events drained per window.
    occupancy: Log2Histogram,
    /// Drain slices for the chrome-trace shard lane (empty drains are
    /// skipped; they would render as zero-width noise).
    slices: Vec<ShardSlice>,
    /// Drain slices not recorded because the bound was reached.
    slices_dropped: u64,
}

impl ShardProfState {
    fn new(run_start: Instant) -> Self {
        ShardProfState {
            run_start,
            drain_ns: 0,
            windows: 0,
            events: 0,
            occupancy: Log2Histogram::new(),
            slices: Vec::new(),
            slices_dropped: 0,
        }
    }
}

/// Coordinator-side half of the execution profiler: the busy/wait split
/// of every pooled window, outbox depths at each barrier, and the
/// barrier timeline.
struct CoordProf {
    /// Coordinator claim-and-drain plus inline-window time, nanoseconds.
    busy_ns: u64,
    /// Time parked at the barrier waiting for workers, nanoseconds.
    wait_ns: u64,
    /// Cross-shard messages pending per (src, dst) outbox per barrier.
    outbox_depth: Log2Histogram,
    /// Barrier-wait slices for the coordinator chrome-trace lane.
    wait_slices: Vec<ShardSlice>,
    /// Wait slices not recorded because the bound was reached.
    slices_dropped: u64,
    /// Barrier completion offsets, microseconds since run start.
    barriers_us: Vec<u64>,
}

impl CoordProf {
    fn new() -> Self {
        CoordProf {
            busy_ns: 0,
            wait_ns: 0,
            outbox_depth: Log2Histogram::new(),
            wait_slices: Vec::new(),
            slices_dropped: 0,
            barriers_us: Vec::new(),
        }
    }
}

/// One worker shard: a vertical slice of the simulator owning every
/// `index + i·N`-th proxy, its events, and its resident flows.
struct Shard<A, P> {
    index: usize,
    /// Local agents; local index `l` holds proxy `index + l·N`.
    agents: Vec<A>,
    rngs: AgentRngs,
    queue: CalendarQueue<ShardEvent>,
    flows: FlowTable<FlowMeta>,
    sink: ActionSink,
    probe: P,
    /// Completions recorded this window, drained by the coordinator.
    records: Vec<Completion>,
    /// Cross-shard deliveries produced this window, per destination
    /// shard, routed by the coordinator at the barrier.
    outboxes: Vec<Vec<Routed>>,
    counters: ShardCounters,
    /// Timestamp of this shard's earliest pending event (`u64::MAX` when
    /// idle); maintained by `drain_window` and by coordinator routing.
    next_at: u64,
    /// Pending events addressed to a proxy — work that could emit a
    /// cross-shard message the moment it is processed. Fuels the
    /// widening bound (see [`cross_send_bound`](Shard::cross_send_bound)).
    pending_proxy: usize,
    /// Pending events addressed to the origin — work whose earliest
    /// cross-shard consequence is one origin→proxy reply latency away.
    pending_origin: usize,
    /// The latency function, shared immutably with the coordinator and
    /// every sibling shard.
    net: Arc<Net>,
    /// Wall-clock drain profiler, present when
    /// [`ShardTuning::profile`](crate::ShardTuning::profile) is set.
    prof: Option<Box<ShardProfState>>,
}

impl<A: CacheAgent, P: ShardProbe> Shard<A, P> {
    /// Coordinator-side insertion (injection and barrier routing):
    /// classifies the destination for the widening bound and keeps
    /// `next_at` current.
    fn enqueue(&mut self, at: u64, key: u64, ev: ShardEvent) {
        match ev.to {
            NodeId::Proxy(_) => self.pending_proxy += 1,
            NodeId::Origin => self.pending_origin += 1,
            NodeId::Client(_) => {}
        }
        self.next_at = self.next_at.min(at);
        self.queue.push(at, key, ev);
    }

    /// Conservative lower bound on the earliest simulation time at which
    /// this shard could *send* a cross-shard message, given its current
    /// queue. `u64::MAX` means "never, until new work arrives": pending
    /// client deliveries complete flows and spawn nothing.
    ///
    /// Proxy-bound work can forward the instant it is processed, so the
    /// bound is this shard's earliest pending timestamp. Origin-bound
    /// work is strictly weaker: the origin replies only to its local
    /// proxy, so the earliest a proxy on this shard can act again — and
    /// hence send anything cross-shard — is one origin→proxy reply
    /// latency after the earliest pending event. Using `next_at` (≤ the
    /// earliest event of either class) keeps both branches conservative.
    fn cross_send_bound(&self, origin_reply_us: u64) -> u64 {
        if self.pending_proxy > 0 {
            self.next_at
        } else if self.pending_origin > 0 {
            self.next_at.saturating_add(origin_reply_us)
        } else {
            u64::MAX
        }
    }

    /// Drains the window, measuring the drain on the wall clock when
    /// profiling is on. Called for both execution paths (pool workers
    /// via [`WindowTask`], the coordinator inline), so the profile
    /// attributes every drain to the shard that did it regardless of
    /// which thread ran it.
    fn drain_window(&mut self, window_end: u64) {
        if self.prof.is_none() {
            self.drain_events(window_end);
            return;
        }
        let before = self.counters.events_processed;
        // Profiler telemetry only. adc-lint: allow(determinism, determinism-purity)
        let t0 = Instant::now();
        self.drain_events(window_end);
        let dur = t0.elapsed();
        let drained = self.counters.events_processed - before;
        let lane = self.index as u32; // shard counts stay tiny
        if let Some(prof) = self.prof.as_mut() {
            // Durations ≪ 2^64 ns (584 years): the casts are lossless.
            // Wall-clock profiler accounting sits deliberately outside
            // the SimEvent stream; the occupancy-sum identity test
            // reconciles it. adc-lint: allow(obs-coverage)
            prof.drain_ns += dur.as_nanos() as u64;
            prof.windows += 1;
            prof.events += drained;
            prof.occupancy.record(drained);
            if drained > 0 {
                if prof.slices.len() < ShardProfile::MAX_SLICES {
                    prof.slices.push(ShardSlice {
                        lane,
                        start_us: t0.duration_since(prof.run_start).as_micros() as u64,
                        dur_us: dur.as_micros() as u64,
                        wait: false,
                    });
                } else {
                    // Trace cap hit; counted so the report says so.
                    // adc-lint: allow(obs-coverage)
                    prof.slices_dropped += 1;
                }
            }
        }
    }

    /// Drains every local event with `at < window_end`, in `(at, key)`
    /// order, then records the next pending timestamp.
    fn drain_events(&mut self, window_end: u64) {
        loop {
            match self.queue.peek_key() {
                None => {
                    self.next_at = u64::MAX;
                    return;
                }
                Some((at, _)) if at >= window_end => {
                    self.next_at = at;
                    return;
                }
                Some(_) => {
                    let Some((at, key, ev)) = self.queue.pop() else {
                        // peek_key just returned Some.
                        unreachable!("peeked event vanished");
                    };
                    match ev.to {
                        NodeId::Proxy(_) => self.pending_proxy -= 1,
                        NodeId::Origin => self.pending_origin -= 1,
                        NodeId::Client(_) => {}
                    }
                    self.process(at, key, ev, window_end);
                }
            }
        }
    }

    /// Processes one delivery, mirroring the single-threaded runner's
    /// `Deliver` arm field for field (counters, byte accounting, hop
    /// accounting, dispatch, sink drain).
    fn process(&mut self, at: u64, _key: u64, ev: ShardEvent, window_end: u64) {
        let now = SimTime::from_micros(at);
        let shards_n = self.net.shards;
        if P::ENABLED {
            self.probe.tick(at);
        }
        self.counters.events_processed += 1;
        self.counters.messages_delivered += 1;
        let ShardEvent { from, to, message } = ev;
        let id = message.request_id();

        // Byte accounting: a reply's body travels once per transfer;
        // attribute it to its producer.
        if from != to {
            if let Message::Reply(rep) = &message {
                if from == NodeId::Origin {
                    self.counters.bytes_from_origin += u64::from(rep.size);
                } else if rep.served_from.is_hit() && matches!(to, NodeId::Client(_)) {
                    self.counters.bytes_from_caches += u64::from(rep.size);
                }
            }
        }

        // The flow's metadata rides with its single in-flight message:
        // pop it here, reinsert (locally or cross-shard) with whatever
        // the dispatch produces. A missing flow can only mean an orphan
        // (impossible under the validated clean-fault configs, but
        // counted, not crashed on, like the single-threaded runner).
        let Some(mut meta) = self.flows.remove(&id) else {
            match (to, &message) {
                (NodeId::Client(_), Message::Reply(_)) => self.counters.client_orphans += 1,
                (NodeId::Origin, Message::Request(_)) => {
                    self.counters.orphan_origin_requests += 1;
                }
                _ => {}
            }
            return;
        };
        // A hop is any message transfer between distinct nodes, counted
        // for the flow it belongs to.
        if from != to {
            meta.hops += 1;
        }

        debug_assert!(self.sink.is_empty(), "sink drained after every delivery");
        match to {
            NodeId::Proxy(pid) => {
                debug_assert_eq!(
                    self.net.shard_of(pid),
                    self.index,
                    "event delivered to wrong shard"
                );
                // Round-robin partitioning: local index = proxy / shards.
                let agent = &mut self.agents[pid.raw() as usize / shards_n];
                match message {
                    Message::Request(req) => {
                        let rng: &mut dyn RngCore = match &mut self.rngs {
                            AgentRngs::Shared(r) => r,
                            // Same local index as the agent above.
                            AgentRngs::PerAgent(v) => &mut v[pid.raw() as usize / shards_n],
                        };
                        agent.on_request(req, rng, &mut self.probe, &mut self.sink);
                    }
                    Message::Reply(rep) => agent.on_reply(rep, &mut self.probe, &mut self.sink),
                }
            }
            NodeId::Origin => match message {
                Message::Request(req) => {
                    // The origin always resolves; reply to the proxy that
                    // sent the request. The origin is stateless, so the
                    // round trip stays on the sending proxy's shard.
                    let reply = Reply::from_origin(&req, meta.size);
                    self.sink.send(req.sender, reply);
                }
                Message::Reply(_) => {
                    debug_assert!(false, "origin never receives replies");
                }
            },
            NodeId::Client(_) => match message {
                Message::Reply(rep) => {
                    // Flow complete: record for the coordinator fold; the
                    // metadata is consumed and nothing is re-queued.
                    let server = match rep.served_from {
                        adc_core::ServedFrom::Cache(p) => Some(p.raw()),
                        adc_core::ServedFrom::Origin => None,
                    };
                    self.records.push(Completion {
                        at,
                        flow_seq: id.seq,
                        hit: rep.served_from.is_hit(),
                        server,
                        hops: meta.hops,
                        start_us: meta.start.as_micros(),
                        phase: meta.phase,
                    });
                    return;
                }
                Message::Request(_) => {
                    debug_assert!(false, "clients never receive requests");
                }
            },
        }

        // Route the (at most one) outgoing action. Dispatch consumed the
        // flow's metadata above, so exactly one reinsertion happens here;
        // an agent that drops a flow (never under the cooperative
        // protocols) simply ends it, as in the single-threaded runner.
        for action in self.sink.drain() {
            let Action::Send {
                to: dest,
                mut message,
            } = action;
            // Agents only know a nominal object size; the workload's
            // size lives in the flow metadata. Normalize replies so byte
            // accounting and the client-visible size are the workload's.
            if let Message::Reply(rep) = &mut message {
                rep.size = meta.size;
            }
            let mut out_at = now + self.net.latency(to, dest);
            if dest == NodeId::Origin {
                // Account for the origin's per-request service time up
                // front, so its reply goes out at arrival + service +
                // wire time.
                out_at += self.net.base.origin_service;
            }
            meta.step += 1;
            debug_assert!(
                u64::from(meta.step) < (1 << STEP_BITS),
                "flow step overflows the event key"
            );
            let key = event_key(id.seq, meta.step);
            let ev = ShardEvent {
                from: to,
                to: dest,
                message,
            };
            match dest {
                NodeId::Proxy(p) if self.net.shard_of(p) != self.index => {
                    // Conservative synchronization: a cross-shard message
                    // travels a proxy↔proxy edge with latency ≥ W, so it
                    // cannot land inside the current window — widened
                    // windows included, because `window_end` never
                    // exceeds the grid barrier after the global earliest
                    // cross-shard send bound (see `cross_send_bound`).
                    debug_assert!(
                        out_at.as_micros() >= window_end,
                        "lookahead violated: cross-shard delivery at {} inside window ending {}",
                        out_at.as_micros(),
                        window_end
                    );
                    // Outboxes are sized to the shard count at startup.
                    self.outboxes[self.net.shard_of(p)].push(Routed {
                        at: out_at.as_micros(),
                        key,
                        ev,
                        meta,
                    });
                }
                _ => {
                    // Local reinsertion: classify for the widening bound
                    // (the sink borrow is live, so this mirrors
                    // `enqueue` on disjoint fields).
                    match dest {
                        NodeId::Proxy(_) => self.pending_proxy += 1,
                        NodeId::Origin => self.pending_origin += 1,
                        NodeId::Client(_) => {}
                    }
                    self.queue.push(out_at.as_micros(), key, ev);
                    self.flows.insert(id, meta);
                }
            }
        }
    }
}

/// A shard cell is the pool's unit of work: one window drain. Running a
/// window is a pure function of the cell's own state and `window_end`,
/// which is what makes the claim-cursor schedule irrelevant to the
/// result (see the [`pool`] module docs).
impl<A: CacheAgent + Send, P: ShardProbe> WindowTask for Shard<A, P> {
    fn run_window(&mut self, window_end: u64) {
        self.drain_window(window_end);
    }
}

/// Locks every shard cell for a coordinator phase. Uncontended by the
/// barrier protocol: the coordinator only locks while every worker is
/// parked between windows.
fn lock_all<W>(cells: &[Mutex<W>]) -> Vec<MutexGuard<'_, W>> {
    cells
        .iter()
        .map(|c| c.lock().unwrap_or_else(PoisonError::into_inner))
        .collect()
}

/// Rejects configurations the sharded executor cannot reproduce
/// deterministically, returning the lookahead `W` in microseconds.
fn validate_sharded(config: &SimConfig, proxies: usize, shards: usize) -> u64 {
    assert!(shards >= 1, "shards must be at least 1");
    assert!(
        config.faults.is_clean(),
        "sharded execution does not support fault injection (duplicates would need \
         cross-shard coordination mid-window)"
    );
    assert!(
        config.churn.is_empty(),
        "sharded execution does not support churn (restarts fire on the global \
         completion count, which workers cannot observe mid-window)"
    );
    assert_eq!(
        config.trace_capacity, 0,
        "sharded execution does not support delivery tracing (the trace log is a \
         single totally-ordered stream)"
    );
    if let InjectionMode::OpenLoop { interval } = config.injection {
        assert!(
            interval.as_micros() > 0,
            "open-loop interval must be positive under sharded execution"
        );
    }
    let w = lookahead_us(config, proxies);
    assert!(
        w > 0,
        "sharded execution needs a positive minimum latency as its lookahead bound \
         (instant networks serialize everything; use the single-threaded runner)"
    );
    w
}

impl<A: CacheAgent + Send> Simulation<A> {
    /// Runs the workload on `shards` worker shards and returns the
    /// report; see the [module docs](self) for the synchronization
    /// protocol and the determinism guarantees. With
    /// [`InjectionMode::Sequential`] the report is byte-identical to
    /// [`Simulation::run`]; with open-loop injection it is invariant in
    /// `shards` (any `shards ≥ 1`, including counts exceeding the proxy
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, if the configuration enables faults,
    /// churn or tracing, if an open-loop interval is zero, or if every
    /// configured latency is zero (no positive lookahead bound).
    pub fn run_sharded(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
        shards: usize,
    ) -> SimReport {
        self.run_sharded_with_agents(workload, shards).0
    }

    /// [`run_sharded`](Simulation::run_sharded), additionally returning
    /// the agents in proxy-id order for post-run inspection.
    ///
    /// # Panics
    ///
    /// As [`run_sharded`](Simulation::run_sharded).
    pub fn run_sharded_with_agents(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
        shards: usize,
    ) -> (SimReport, Vec<A>) {
        let (report, agents, _) = run_sharded_inner::<A, NullProbe>(self, workload, shards, None);
        (report, agents)
    }

    /// [`run_sharded`](Simulation::run_sharded) with per-shard
    /// [`MetricsProbe`]s attached; their registries and the
    /// coordinator's completion registry fold through the exact
    /// [`Registry::merge`] into [`SimReport::metrics`], byte-identical
    /// to [`Simulation::run_with_metrics`] under sequential injection.
    ///
    /// # Panics
    ///
    /// As [`run_sharded`](Simulation::run_sharded).
    pub fn run_sharded_with_metrics(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
        shards: usize,
    ) -> SimReport {
        let coord = MetricsProbe::with_cadence(0);
        let (mut report, _, registry) =
            run_sharded_inner::<A, MetricsProbe>(self, workload, shards, Some(coord));
        report.metrics = registry.as_ref().map(MetricsReport::from_registry);
        report
    }
}

/// Live state for the periodic convergence sampler (the sharded twin of
/// the runner's `ConvState`; ordered map so hot-set selection never
/// depends on a randomized hasher).
struct ConvState {
    cfg: ConvergenceConfig,
    counts: BTreeMap<u64, u64>,
    tracker: ConvergenceTracker,
}

/// Injects the next workload request at `now`, routing its first
/// delivery into the owner shard. `shards` is the coordinator's locked
/// view of the shard cells (or any other exclusive view of them).
/// Returns false when the workload is exhausted.
#[allow(clippy::too_many_arguments)] // the coordinator's loop state, threaded explicitly
fn inject_next<A, P, G>(
    now: SimTime,
    shards: &mut [G],
    workload: &mut dyn Iterator<Item = RequestRecord>,
    net: &Net,
    n: u32,
    assignment: ClientAssignment,
    assign_rng: &mut StdRng,
    conv: &mut Option<ConvState>,
    coord_probe: &mut Option<MetricsProbe>,
    inj_times: &mut VecDeque<u64>,
    injected: &mut u64,
) -> bool
where
    A: CacheAgent,
    P: ShardProbe,
    G: std::ops::DerefMut<Target = Shard<A, P>>,
{
    let Some(record) = workload.next() else {
        return false;
    };
    if let Some(c) = conv.as_mut() {
        *c.counts.entry(record.object.raw()).or_insert(0) += 1;
    }
    if let Some(p) = coord_probe.as_mut() {
        p.emit(SimEvent::RequestInjected {
            client: record.client.raw(),
            seq: record.seq,
            object: record.object.raw(),
        });
    }
    let proxy = match assignment {
        ClientAssignment::Sticky => ProxyId::new(record.client.raw() % n),
        ClientAssignment::RandomPerRequest => ProxyId::new(assign_rng.gen_range(0..n)),
    };
    let id = RequestId::new(record.client, record.seq);
    let meta = FlowMeta {
        start: now,
        hops: 0,
        step: 0,
        size: record.size,
        phase: record.phase,
    };
    let request = Request::new(id, record.object, record.client);
    let from = NodeId::Client(record.client);
    let to = NodeId::Proxy(proxy);
    let at = (now + net.latency(from, to)).as_micros();
    // shard_of() is always below the shard count.
    let shard = &mut shards[net.shard_of(proxy)];
    shard.enqueue(
        at,
        event_key(id.seq, 0),
        ShardEvent {
            from,
            to,
            message: Message::Request(request),
        },
    );
    shard.flows.insert(id, meta);
    inj_times.push_back(now.as_micros());
    *injected += 1;
    true
}

/// The coordinator loop: builds the shards, advances the window barrier
/// until every queue drains, folds completions, and assembles the
/// report. Returns `(report, agents in id order, merged registry)`.
#[allow(clippy::too_many_lines)] // one loop, mirroring the runner's shape
fn run_sharded_inner<A: CacheAgent + Send, P: ShardProbe>(
    sim: Simulation<A>,
    workload: impl IntoIterator<Item = RequestRecord>,
    shards_n: usize,
    mut coord_probe: Option<MetricsProbe>,
) -> (SimReport, Vec<A>, Option<Registry>) {
    // Wall telemetry only. adc-lint: allow(determinism, determinism-purity)
    let wall_start = Instant::now();
    // CPU telemetry covers the coordinator thread only; worker CPU would
    // need cross-thread aggregation for a number no gate consumes.
    let cpu_start = crate::cputime::thread_cpu_now();
    let Simulation { agents, config } = sim;
    let n_proxies = agents.len();
    let n = n_proxies as u32; // proxy counts stay tiny
    let window_us = validate_sharded(&config, n_proxies, shards_n);
    let net = Arc::new(Net {
        base: config.latency,
        matrix: config.proxy_latency_matrix.clone(),
        shards: shards_n,
    });

    // Partition agents round-robin: proxy p → shard p % N. The shared
    // sequential RNG is the legacy stream; per-agent open-loop streams
    // decorrelate via splitmix64 over the proxy id.
    let sequential = config.injection == InjectionMode::Sequential;
    let shared_rng = SharedRng(Arc::new(Mutex::new(StdRng::seed_from_u64(
        config.seed ^ 0xA6E7,
    ))));
    let mut shard_agents: Vec<Vec<A>> = (0..shards_n).map(|_| Vec::new()).collect();
    for (p, agent) in agents.into_iter().enumerate() {
        // Round-robin: proxy p lives on shard p % N.
        shard_agents[p % shards_n].push(agent);
    }
    let shards: Vec<Shard<A, P>> = shard_agents
        .into_iter()
        .enumerate()
        .map(|(index, agents)| {
            let rngs = if sequential {
                AgentRngs::Shared(shared_rng.clone())
            } else {
                AgentRngs::PerAgent(
                    (0..agents.len())
                        // Local l on shard s is proxy s + l·N; seed from
                        // the global proxy id so partitioning is moot.
                        .map(|l| {
                            let proxy = (index + l * shards_n) as u64; // dense ids
                            StdRng::seed_from_u64(config.seed ^ 0xA6E7 ^ splitmix64(proxy + 1))
                        })
                        .collect(),
                )
            };
            Shard {
                index,
                agents,
                rngs,
                queue: CalendarQueue::new(),
                flows: FlowTable::new(),
                sink: ActionSink::new(),
                probe: P::for_shard(),
                records: Vec::new(),
                outboxes: (0..shards_n).map(|_| Vec::new()).collect(),
                counters: ShardCounters::default(),
                next_at: u64::MAX,
                pending_proxy: 0,
                pending_origin: 0,
                net: Arc::clone(&net),
                prof: config
                    .shard
                    .profile
                    .then(|| Box::new(ShardProfState::new(wall_start))),
            }
        })
        .collect();

    let mut workload = workload.into_iter();
    let mut assign_rng = StdRng::seed_from_u64(config.seed ^ 0xA551);
    let assignment = config.assignment;

    // Coordinator-side accounting (the runner's locals, verbatim).
    let mut completed: u64 = 0;
    let mut hits: u64 = 0;
    let mut phases = [PhaseStats::default(); 3];
    let mut hops_summary = Summary::new();
    let mut latency_summary = Summary::new();
    let mut latency_p50 = P2Quantile::new(0.5);
    let mut latency_p99 = P2Quantile::new(0.99);
    let mut hit_window = MovingAverage::new(config.hit_window);
    let mut hops_window = MovingAverage::new(config.hit_window);
    let mut hit_sampler = Sampler::new("hit_rate", config.sample_every);
    let mut hops_sampler = Sampler::new("hops", config.sample_every);
    let mut occupancy: Option<Vec<Sampler>> = config.sample_occupancy.then(|| {
        (0..n_proxies)
            .map(|_| Sampler::new("", config.sample_every))
            .collect()
    });
    let mut conv: Option<ConvState> = config.convergence.map(|cfg| ConvState {
        cfg,
        counts: BTreeMap::new(),
        tracker: ConvergenceTracker::new(),
    });

    // Live-flow peak accounting: flows enter at injection and leave at
    // completion; the coordinator replays both in time order (see
    // SimReport::peak_flows for the tie rule).
    let mut inj_times: VecDeque<u64> = VecDeque::new();
    let mut live_flows: usize = 0;
    let mut peak_flows: usize = 0;
    let mut injected: u64 = 0;
    let mut workload_done = false;

    // Synchronization tuning (see ShardTuning). Widening and batched
    // folds move barrier placement, which is observable only by
    // barrier-driven state sampling (occupancy series, convergence
    // snapshots, metrics probes) in open-loop runs; sequential mode is
    // immune — each of its folds sees at most one completion, with all
    // of that flow's agent mutations already settled. Gate both
    // features off exactly when an open-loop run samples state at
    // barriers, so every tuning combination yields identical bytes.
    let state_samplers = occupancy.is_some() || conv.is_some() || coord_probe.is_some();
    let widen = config.shard.widen && (sequential || !state_samplers);
    let fold_every: u32 = if sequential || state_samplers {
        // Sequential folds drive re-injection and must run every
        // barrier; sampling runs pin the legacy fold cadence.
        1
    } else {
        config.shard.fold_batch.max(1)
    };
    // The coordinator always executes shards too, so more workers than
    // `shards - 1` could never claim a cell.
    let workers = config
        .shard
        .pool_threads
        .unwrap_or_else(|| pool::default_workers(shards_n))
        .min(shards_n.saturating_sub(1));

    let interval_us = match config.injection {
        InjectionMode::Sequential => 0,
        InjectionMode::OpenLoop { interval } => interval.as_micros(),
    };
    let mut next_inject_at: u64 = 0;
    let client_proxy_us = net.base.client_proxy.as_micros();
    // The origin→proxy reply latency: the widening slack of
    // origin-bound work. Latency matrices only override proxy↔proxy
    // edges, so the class model's value is exact.
    let origin_reply_us = net.base.proxy_origin.as_micros();

    let mut exec = ShardExecStats::default();
    // Coordinator half of the execution profiler (None = profiling off).
    let mut coord_prof: Option<CoordProf> = config.shard.profile.then(CoordProf::new);
    // Reusable fold buffer: every shard's completions, sorted globally.
    let mut records_buf: Vec<Completion> = Vec::new();
    // Barriers since the last fold, and the latest barrier timestamp
    // (the settling horizon of a deferred fold).
    let mut fold_pending: u32 = 0;
    let mut last_window_end: u64 = 0;

    let cells: Vec<Mutex<Shard<A, P>>> = shards.into_iter().map(Mutex::new).collect();
    let ((), spawned) = pool::with_pool(&cells, workers, |pool| {
        let mut guards = lock_all(&cells);

        // Canonical completion fold: replay the `(at, flow_seq)`-sorted
        // global completion sequence through the legacy bookkeeping,
        // then settle injections up to the fold horizon. A macro rather
        // than a closure so each expansion can borrow the coordinator's
        // whole local state.
        macro_rules! fold_completions {
            ($fold_end:expr) => {{
                let fold_end: u64 = $fold_end;
                records_buf.clear();
                for shard in guards.iter_mut() {
                    records_buf.append(&mut shard.records);
                }
                records_buf.sort_unstable_by_key(|r| (r.at, r.flow_seq));
                for &rec in records_buf.iter() {
                    // Flows injected before this completion went live
                    // first (completions settle first on exact
                    // timestamp ties, making the fold independent of
                    // the runner's push order).
                    while inj_times.front().is_some_and(|&t| t < rec.at) {
                        inj_times.pop_front();
                        live_flows += 1;
                        peak_flows = peak_flows.max(live_flows);
                    }
                    live_flows = live_flows.saturating_sub(1);
                    completed += 1;
                    if rec.hit {
                        hits += 1;
                    }
                    if let Some(p) = coord_probe.as_mut() {
                        p.record_completion(rec.at, rec.hit, rec.hops, rec.start_us, rec.server);
                    }
                    let phase_idx = match rec.phase {
                        Phase::Fill => 0,
                        Phase::RequestI => 1,
                        Phase::RequestII => 2,
                    };
                    // phase_idx is 0..3 by construction.
                    phases[phase_idx].requests += 1;
                    phases[phase_idx].hits += u64::from(rec.hit);
                    let hops_f = f64::from(rec.hops);
                    let completed_f = completed as f64; // < 2^53: exact
                    let latency_us = (rec.at - rec.start_us) as f64; // < 2^53: exact
                    hops_summary.push(hops_f);
                    latency_summary.push(latency_us);
                    latency_p50.push(latency_us);
                    latency_p99.push(latency_us);
                    hit_window.push_bool(rec.hit);
                    hops_window.push(hops_f);
                    if let Some(v) = hit_window.value() {
                        hit_sampler.observe(completed_f, v);
                    }
                    if let Some(v) = hops_window.value() {
                        hops_sampler.observe(completed_f, v);
                    }
                    if let Some(occupancy) = occupancy.as_mut() {
                        for (p, sampler) in occupancy.iter_mut().enumerate() {
                            // Proxy p lives on shard p % N at local index p / N.
                            let agent = &guards[p % shards_n].agents[p / shards_n];
                            // cache sizes ≪ 2^53: exact
                            sampler.observe(completed_f, agent.cached_objects() as f64);
                        }
                    }
                    // Convergence: snapshot every agent's owner hint for
                    // the hot set on the sampling schedule.
                    if let Some(c) = conv.as_mut() {
                        if completed.is_multiple_of(c.cfg.sample_every) {
                            let mut hot: Vec<(u64, u64)> =
                                c.counts.iter().map(|(&o, &n)| (o, n)).collect();
                            hot.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                            hot.truncate(c.cfg.top_k);
                            let snapshot: Vec<(u64, Vec<Option<u32>>)> = hot
                                .iter()
                                .map(|&(object, _)| {
                                    let hints = (0..n_proxies)
                                        .map(|p| {
                                            // Proxy p: shard p % N, local p / N.
                                            guards[p % shards_n].agents[p / shards_n]
                                                .owner_hint(ObjectId::new(object))
                                                .map(|o| o.raw())
                                        })
                                        .collect();
                                    (object, hints)
                                })
                                .collect();
                            c.tracker.sample(completed_f, &snapshot);
                        }
                    }
                    // Occupancy-histogram sampling on the cluster-wide
                    // cadence (the coordinator owns the completion
                    // count; shard probes hold the gauges).
                    if coord_probe.is_some() && completed.is_multiple_of(METRICS_CADENCE) {
                        for shard in guards.iter_mut() {
                            shard.probe.barrier_sample();
                        }
                    }
                    // Sequential: the completed flow hands its slot to
                    // the next workload request, injected at the
                    // completion instant.
                    if sequential && !workload_done {
                        workload_done = !inject_next(
                            SimTime::from_micros(rec.at),
                            &mut guards,
                            &mut workload,
                            &net,
                            n,
                            assignment,
                            &mut assign_rng,
                            &mut conv,
                            &mut coord_probe,
                            &mut inj_times,
                            &mut injected,
                        );
                    }
                }
                // Settle injections up to the fold horizon so the
                // live-flow counter tracks time order even across
                // completion-free windows.
                while inj_times.front().is_some_and(|&t| t < fold_end) {
                    inj_times.pop_front();
                    live_flows += 1;
                    peak_flows = peak_flows.max(live_flows);
                }
            }};
        }

        // Prime the pump. Sequential injects the first request at t=0;
        // open-loop arrivals are generated window by window below.
        if sequential {
            workload_done = !inject_next(
                SimTime::ZERO,
                &mut guards,
                &mut workload,
                &net,
                n,
                assignment,
                &mut assign_rng,
                &mut conv,
                &mut coord_probe,
                &mut inj_times,
                &mut injected,
            );
        }

        loop {
            // Earliest pending work across shards and (open-loop) the
            // arrival process; the plain next window is the
            // lookahead-aligned window containing it.
            let mut min_next = guards.iter().map(|s| s.next_at).min().unwrap_or(u64::MAX);
            if interval_us > 0 && !workload_done {
                min_next = min_next.min(next_inject_at + client_proxy_us);
            }
            if min_next == u64::MAX {
                // Drained. Fold any deferred completions before leaving.
                if fold_pending > 0 {
                    fold_completions!(last_window_end);
                }
                break;
            }
            let grid_end = (min_next / window_us) * window_us + window_us;

            // Adaptive widening: when no shard can emit a cross-shard
            // message before `grid_end`, jump the barrier to the
            // lookahead-aligned window containing the earliest possible
            // cross-shard send. Every such send is delivered a full
            // lookahead later, i.e. at or after the widened barrier, so
            // the jump never admits a delivery into the widened range
            // (conservatism argument in DESIGN.md §6c).
            let mut window_end = grid_end;
            if widen {
                let mut earliest_send = guards
                    .iter()
                    .map(|s| s.cross_send_bound(origin_reply_us))
                    .min()
                    .unwrap_or(u64::MAX);
                if interval_us > 0 && !workload_done {
                    // A future arrival is a fresh proxy-bound delivery.
                    earliest_send = earliest_send.min(next_inject_at + client_proxy_us);
                }
                if earliest_send == u64::MAX {
                    // Nothing left can ever cross shards: drain fully.
                    window_end = u64::MAX;
                } else {
                    window_end = ((earliest_send / window_us) * window_us)
                        .saturating_add(window_us)
                        .max(grid_end);
                }
            }
            exec.windows_advanced += 1;
            if window_end > grid_end {
                exec.windows_widened += 1;
                if window_end != u64::MAX {
                    exec.windows_skipped += (window_end - grid_end) / window_us;
                }
            }

            // Open-loop: generate every arrival whose *arrival time*
            // precedes this barrier. Arrivals whose first delivery
            // falls beyond the barrier merely sit in the owner queue,
            // so the event schedule is a pure function of the arrival
            // grid — but pushing them now puts their timestamps in
            // `inj_times` before any fold that could observe a
            // completion after them, which makes the live-flow
            // interleave pure global time order, independent of
            // barrier placement (fold batching, widening, shard
            // count).
            if interval_us > 0 {
                while !workload_done && next_inject_at < window_end {
                    if inject_next(
                        SimTime::from_micros(next_inject_at),
                        &mut guards,
                        &mut workload,
                        &net,
                        n,
                        assignment,
                        &mut assign_rng,
                        &mut conv,
                        &mut coord_probe,
                        &mut inj_times,
                        &mut injected,
                    ) {
                        next_inject_at += interval_us;
                    } else {
                        workload_done = true;
                    }
                }
            }

            // Run the window: every shard with work below the barrier
            // drains independently. A single active shard (sequential
            // mode always lands here) or an empty pool drains inline —
            // zero synchronization; otherwise release the cells to the
            // persistent pool and re-lock after the barrier.
            let active = guards.iter().filter(|s| s.next_at < window_end).count();
            if active > 1 && workers > 0 {
                guards.clear();
                match coord_prof.as_mut() {
                    None => pool.run_window(window_end, active),
                    Some(cp) => {
                        // Profiler telemetry only.
                        // adc-lint: allow(determinism, determinism-purity)
                        let t0 = Instant::now();
                        let t = pool.run_window_timed(window_end, active);
                        // Wall-clock split from the pool, outside the
                        // SimEvent stream. adc-lint: allow(obs-coverage)
                        cp.busy_ns += t.busy_ns;
                        cp.wait_ns += t.wait_ns; // adc-lint: allow(obs-coverage)
                                                 // The wait slice starts where the coordinator's
                                                 // own claim share ended.
                        let wait_us = t.wait_ns / 1_000;
                        if wait_us > 0 {
                            if cp.wait_slices.len() < ShardProfile::MAX_SLICES {
                                cp.wait_slices.push(ShardSlice {
                                    // Coordinator lane sits after the
                                    // shard lanes.
                                    lane: shards_n as u32,
                                    start_us: t0.duration_since(wall_start).as_micros() as u64
                                        + t.busy_ns / 1_000,
                                    dur_us: wait_us,
                                    wait: true,
                                });
                            } else {
                                // Trace cap hit; counted so the report
                                // says so. adc-lint: allow(obs-coverage)
                                cp.slices_dropped += 1;
                            }
                        }
                    }
                }
                guards = lock_all(&cells);
            } else {
                // Inline windows count toward coordinator busy time; the
                // per-shard drain profiling happens inside drain_window.
                // adc-lint: allow(determinism, determinism-purity)
                let t0 = coord_prof.as_ref().map(|_| Instant::now());
                for shard in guards.iter_mut().filter(|s| s.next_at < window_end) {
                    shard.drain_window(window_end);
                }
                if let (Some(cp), Some(t0)) = (coord_prof.as_mut(), t0) {
                    // Wall clock only. adc-lint: allow(obs-coverage)
                    cp.busy_ns += t0.elapsed().as_nanos() as u64;
                }
            }

            // Profiler barrier bookkeeping: outbox depths before routing
            // drains them, and the barrier's place on the wall-clock
            // timeline.
            if let Some(cp) = coord_prof.as_mut() {
                for (src, guard) in guards.iter().enumerate() {
                    for (dst, outbox) in guard.outboxes.iter().enumerate() {
                        if src != dst {
                            cp.outbox_depth.record(outbox.len() as u64);
                        }
                    }
                }
                if cp.barriers_us.len() < ShardProfile::MAX_SLICES {
                    cp.barriers_us.push(wall_start.elapsed().as_micros() as u64);
                }
            }

            // Barrier: route cross-shard outboxes in (source,
            // destination) order — the insertion order is irrelevant
            // because delivery order is keyed, but keep it fixed anyway.
            // The emptied outbox Vec is recycled to its owner.
            for src in 0..shards_n {
                for dst in 0..shards_n {
                    if src == dst {
                        // process() never routes shard-local work
                        // through an outbox.
                        continue;
                    }
                    // Outboxes are sized to the shard count at startup.
                    let mut routed = std::mem::take(&mut guards[src].outboxes[dst]);
                    for r in routed.drain(..) {
                        debug_assert!(r.at >= window_end, "lookahead violated at the barrier");
                        let id = r.ev.message.request_id();
                        // dst ranges over the shard count.
                        let shard = &mut *guards[dst];
                        shard.enqueue(r.at, r.key, r.ev);
                        shard.flows.insert(id, r.meta);
                    }
                    // src/dst range over the shard count, as above.
                    guards[src].outboxes[dst] = routed;
                }
            }

            last_window_end = window_end;
            fold_pending += 1;
            if fold_pending >= fold_every {
                fold_completions!(window_end);
                fold_pending = 0;
            }
        }
        drop(guards);
    });
    exec.pool_spawns = spawned as u64;

    // Recover the shards from their pool cells for final accounting.
    let mut shards: Vec<Shard<A, P>> = cells
        .into_iter()
        .map(|c| c.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();

    // Merge per-shard counters (pure event counts: sum is exact).
    let mut counters = ShardCounters::default();
    for shard in &shards {
        counters.merge(&shard.counters);
    }

    // Assemble the execution profile: per-shard drain accounting merged
    // with the coordinator's barrier-wait half, slices interleaved on
    // the shared wall-clock timeline.
    let shard_profile = coord_prof.map(|cp| {
        let mut profile = ShardProfile {
            shards: shards_n,
            windows: exec.windows_advanced,
            shard_drain_ns: Vec::with_capacity(shards_n),
            shard_windows: Vec::with_capacity(shards_n),
            shard_events: Vec::with_capacity(shards_n),
            coordinator_busy_ns: cp.busy_ns,
            coordinator_wait_ns: cp.wait_ns,
            window_occupancy: Log2Histogram::new(),
            outbox_depth: cp.outbox_depth,
            slices: cp.wait_slices,
            slices_dropped: cp.slices_dropped,
            barriers_us: cp.barriers_us,
        };
        for shard in &mut shards {
            // Profiling is a run-wide switch: every shard carries state.
            // Invariant: this branch only runs when coord_prof was
            // built, and every shard then got a profiler at construction.
            let sp = shard
                .prof
                .as_mut()
                // adc-lint: allow(panic)
                .expect("profiled run built shard profilers");
            profile.shard_drain_ns.push(sp.drain_ns);
            profile.shard_windows.push(sp.windows);
            profile.shard_events.push(sp.events);
            profile.window_occupancy.merge(&sp.occupancy);
            profile.slices.append(&mut sp.slices);
            // Fold of per-shard caps into the report total.
            // adc-lint: allow(obs-coverage)
            profile.slices_dropped += sp.slices_dropped;
        }
        profile
            .slices
            .sort_unstable_by_key(|s| (s.start_us, s.lane));
        profile
    });
    // The single-queue runner pops one Inject event per open-loop
    // arrival plus the final exhausted pull; synthesize those so
    // events_processed reconciles across executors.
    let events_processed = if interval_us > 0 {
        counters.events_processed + injected + 1
    } else {
        counters.events_processed
    };

    // Collect per-proxy outputs in id order via the round-robin layout.
    let per_proxy = (0..n_proxies)
        // Proxy p lives on shard p % N at local index p / N.
        .map(|p| *shards[p % shards_n].agents[p / shards_n].stats())
        .collect();
    let final_cache_sizes = (0..n_proxies)
        // Same round-robin addressing as above.
        .map(|p| shards[p % shards_n].agents[p / shards_n].cached_objects())
        .collect();

    let report = SimReport {
        completed,
        hits,
        phases,
        hops: hops_summary,
        latency_us: latency_summary,
        latency_p50_us: latency_p50.value().unwrap_or(0.0),
        latency_p99_us: latency_p99.value().unwrap_or(0.0),
        hit_series: hit_sampler.into_series(),
        hops_series: hops_sampler.into_series(),
        per_proxy,
        final_cache_sizes,
        occupancy_series: occupancy
            .map(|samplers| {
                samplers
                    .into_iter()
                    .enumerate()
                    .map(|(i, sampler)| {
                        let mut series = sampler.into_series();
                        series.name = format!("proxy{i}");
                        series
                    })
                    .collect()
            })
            .unwrap_or_default(),
        messages_delivered: counters.messages_delivered,
        events_processed,
        peak_flows,
        duplicates_injected: 0,
        client_orphans: counters.client_orphans,
        orphan_origin_requests: counters.orphan_origin_requests,
        proxies_reset: 0,
        bytes_from_origin: counters.bytes_from_origin,
        bytes_from_caches: counters.bytes_from_caches,
        trace: None,
        convergence: conv.map(|c| c.tracker.into_report()),
        metrics: None,
        shard_exec: Some(exec),
        spans: None,
        shard_profile,
        wall_time: wall_start.elapsed(),
        cpu_time: crate::cputime::thread_cpu_now().saturating_sub(cpu_start),
    };

    // Tear the shards down: agents back into proxy-id order, registries
    // folded through the exact merge (coordinator first, then shards in
    // index order — merge is commutative, the order is cosmetic).
    let mut agent_iters: Vec<std::vec::IntoIter<A>> = Vec::with_capacity(shards_n);
    let mut registries: Vec<Registry> = Vec::new();
    for shard in shards {
        agent_iters.push(shard.agents.into_iter());
        if let Some(reg) = shard.probe.into_registry() {
            registries.push(reg);
        }
    }
    let agents: Vec<A> = (0..n_proxies)
        .map(|p| {
            // Shard p % N yields its agents in local (ascending id)
            // order, so proxy p is the next item of iterator p % N.
            match agent_iters[p % shards_n].next() {
                Some(a) => a,
                // Partitioning placed exactly n agents.
                None => unreachable!("shard ran out of agents"),
            }
        })
        .collect();
    let merged_registry = coord_probe.map(|probe| {
        let mut merged = probe.into_registry();
        merged.merge(&Registry::merge_all(registries.iter()));
        merged
    });

    (report, agents, merged_registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy};
    use adc_workload::StationaryZipf;

    fn adc_agents(n: u32) -> Vec<AdcProxy> {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(8)
            .build();
        (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect()
    }

    /// Default-latency config (the sharded executor needs positive
    /// latencies for its lookahead bound).
    fn config() -> SimConfig {
        SimConfig {
            hit_window: 500,
            sample_every: 500,
            ..SimConfig::default()
        }
    }

    #[test]
    fn lookahead_is_min_latency_over_cross_shard_edges() {
        let c = config();
        // Default model: client_proxy 1ms, proxy_proxy 2ms → W = 1ms.
        assert_eq!(lookahead_us(&c, 5), 1_000);
        // Single proxy: no proxy↔proxy edges, W = client_proxy.
        assert_eq!(lookahead_us(&c, 1), 1_000);
        // A matrix with a faster off-diagonal pair tightens W.
        let mut m = vec![vec![SimTime::from_micros(700); 3]; 3];
        m[0][0] = SimTime::ZERO; // diagonal never constrains W
        let c = SimConfig {
            proxy_latency_matrix: Some(m),
            ..config()
        };
        assert_eq!(lookahead_us(&c, 3), 700);
    }

    #[test]
    fn sequential_sharded_matches_single_threaded_exactly() {
        let workload = || StationaryZipf::new(120, 0.9, 6, 7).take(2_500);
        let legacy = Simulation::new(adc_agents(3), config()).run(workload());
        for shards in [1, 2, 3, 5] {
            let sharded = Simulation::new(adc_agents(3), config()).run_sharded(workload(), shards);
            assert_eq!(legacy.completed, sharded.completed, "shards={shards}");
            assert_eq!(legacy.hits, sharded.hits, "shards={shards}");
            assert_eq!(
                legacy.messages_delivered, sharded.messages_delivered,
                "shards={shards}"
            );
            assert_eq!(
                legacy.events_processed, sharded.events_processed,
                "shards={shards}"
            );
            assert_eq!(legacy.hit_series, sharded.hit_series, "shards={shards}");
            assert_eq!(legacy.peak_flows, sharded.peak_flows, "shards={shards}");
            assert_eq!(legacy.per_proxy, sharded.per_proxy, "shards={shards}");
        }
    }

    #[test]
    fn open_loop_sharded_is_shard_count_invariant() {
        let mut c = config();
        c.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(100),
        };
        let workload = || StationaryZipf::new(100, 0.9, 4, 5).take(1_500);
        let run =
            |shards| Simulation::new(adc_agents(4), c.clone()).run_sharded(workload(), shards);
        let one = run(1);
        assert_eq!(one.completed, 1_500);
        for shards in [2, 3, 7] {
            let k = run(shards);
            assert_eq!(one.completed, k.completed, "shards={shards}");
            assert_eq!(one.hits, k.hits, "shards={shards}");
            assert_eq!(
                one.messages_delivered, k.messages_delivered,
                "shards={shards}"
            );
            assert_eq!(one.events_processed, k.events_processed, "shards={shards}");
            assert_eq!(one.peak_flows, k.peak_flows, "shards={shards}");
            assert_eq!(one.hit_series, k.hit_series, "shards={shards}");
            assert_eq!(one.per_proxy, k.per_proxy, "shards={shards}");
        }
        // Open loop genuinely overlaps flows.
        assert!(one.peak_flows > 1, "open loop should overlap flows");
    }

    #[test]
    fn tuning_matrix_is_byte_identical() {
        // Every synchronization knob is pure execution strategy: the
        // deterministic report bytes must not move across any pool /
        // widening / fold-batch combination, in either injection mode,
        // with barrier-driven state sampling on and off.
        use crate::config::ShardTuning;
        let workload = || StationaryZipf::new(100, 0.9, 4, 5).take(1_000);
        for open_loop in [false, true] {
            for occupancy in [false, true] {
                let mut base = config();
                base.sample_occupancy = occupancy;
                if open_loop {
                    base.injection = InjectionMode::OpenLoop {
                        interval: SimTime::from_micros(60),
                    };
                }
                let reference = Simulation::new(adc_agents(3), base.clone())
                    .run_sharded(workload(), 3)
                    .to_deterministic_json();
                for pool_threads in [Some(0), Some(2)] {
                    for widen in [false, true] {
                        for fold_batch in [1, 7] {
                            for profile in [false, true] {
                                let mut c = base.clone();
                                c.shard = ShardTuning {
                                    pool_threads,
                                    widen,
                                    fold_batch,
                                    profile,
                                };
                                let r =
                                    Simulation::new(adc_agents(3), c).run_sharded(workload(), 3);
                                assert_eq!(
                                    reference,
                                    r.to_deterministic_json(),
                                    "bytes moved at open_loop={open_loop} \
                                     occupancy={occupancy} pool={pool_threads:?} \
                                     widen={widen} fold={fold_batch} profile={profile}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn profiling_collects_drain_wait_and_histograms() {
        // Open loop keeps several shards busy per window so the profile
        // has real drain slices and outbox traffic to account for.
        let workload = || StationaryZipf::new(100, 0.9, 8, 5).take(2_000);
        let mut cfg = config();
        cfg.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(60),
        };
        cfg.shard.pool_threads = Some(3);
        cfg.shard.profile = true;
        let report = Simulation::new(adc_agents(8), cfg).run_sharded(workload(), 4);
        let p = report.shard_profile.expect("profile=true populates it");
        assert_eq!(p.shards, 4);
        assert_eq!(p.shard_drain_ns.len(), 4);
        assert_eq!(p.shard_windows.len(), 4);
        assert_eq!(p.shard_events.len(), 4);
        assert!(p.windows > 0, "{p:?}");
        assert!(p.total_drain_ns() > 0, "{p:?}");
        // Occupancy records every invoked drain; its sum is exactly the
        // events the shards processed.
        assert!(p.window_occupancy.count() > 0);
        assert_eq!(p.window_occupancy.sum(), p.shard_events.iter().sum::<u64>());
        assert!(p.outbox_depth.count() > 0, "barriers inspect outboxes");
        assert!(p.imbalance_coefficient() >= 1.0, "{p:?}");
        let frac = p.barrier_wait_fraction();
        assert!((0.0..=1.0).contains(&frac), "{frac}");
        assert!(!p.slices.is_empty(), "non-empty drains leave slices");
        assert!(
            p.slices.windows(2).all(|w| w[0].start_us <= w[1].start_us),
            "slices sorted by start time"
        );
        assert!(!p.barriers_us.is_empty());
        // The slices render into a parseable chrome trace with shard
        // lanes plus the coordinator wait lane.
        let trace = adc_obs::shard_lanes_to_chrome_trace(p.shards, &p.slices, &p.barriers_us);
        assert!(trace.starts_with('{') && trace.ends_with('}'), "{trace}");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"shard 0\""));
        assert!(trace.contains("\"coordinator\""));
        // Default config leaves profiling off and the report clean.
        let plain = Simulation::new(adc_agents(8), config()).run_sharded(workload(), 4);
        assert!(plain.shard_profile.is_none());
    }

    #[test]
    fn widening_engages_and_reports_stats() {
        // Sequential mode is always widening-eligible: a flow's origin
        // round trip leaves only origin-/client-bound work pending, so
        // the barrier regularly jumps several windows at once.
        let workload = || StationaryZipf::new(80, 0.9, 4, 5).take(600);
        let on = Simulation::new(adc_agents(3), config()).run_sharded(workload(), 3);
        let exec_on = on.shard_exec.expect("sharded runs report exec stats");
        assert!(exec_on.windows_widened > 0, "{exec_on:?}");
        assert!(exec_on.windows_skipped > 0, "{exec_on:?}");
        let mut off_cfg = config();
        off_cfg.shard.widen = false;
        let off = Simulation::new(adc_agents(3), off_cfg).run_sharded(workload(), 3);
        let exec_off = off.shard_exec.expect("sharded runs report exec stats");
        assert_eq!(exec_off.windows_widened, 0, "{exec_off:?}");
        assert_eq!(exec_off.windows_skipped, 0, "{exec_off:?}");
        // Widening exists to cut barrier count; the report bytes stay.
        assert!(
            exec_on.windows_advanced < exec_off.windows_advanced,
            "{exec_on:?} vs {exec_off:?}"
        );
        assert_eq!(on.to_deterministic_json(), off.to_deterministic_json());
        // Open loop with state sampling active must hold the legacy
        // barrier grid (widening auto-disabled), even when requested.
        let mut sampled = config();
        sampled.sample_occupancy = true;
        sampled.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(100),
        };
        let s = Simulation::new(adc_agents(3), sampled).run_sharded(workload(), 3);
        let exec_s = s.shard_exec.expect("sharded runs report exec stats");
        assert_eq!(exec_s.windows_widened, 0, "{exec_s:?}");
        // ...and without samplers, a sparse open-loop arrival schedule
        // widens across the idle stretches between arrivals.
        let mut sparse = config();
        sparse.sample_occupancy = false;
        sparse.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(5_000),
        };
        let sp = Simulation::new(adc_agents(3), sparse).run_sharded(workload(), 3);
        let exec_sp = sp.shard_exec.expect("sharded runs report exec stats");
        assert!(exec_sp.windows_widened > 0, "{exec_sp:?}");
    }

    #[test]
    fn forced_pool_threads_keep_identity_and_report_spawns() {
        // Forcing workers on a single-core host still yields identical
        // bytes (the pool protocol is order-free by construction), and
        // the spawn telemetry reflects the forced pool.
        let workload = || StationaryZipf::new(100, 0.9, 4, 5).take(1_000);
        let mut c = config();
        c.sample_occupancy = false;
        c.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(60),
        };
        let mut inline_cfg = c.clone();
        inline_cfg.shard.pool_threads = Some(0);
        let inline = Simulation::new(adc_agents(4), inline_cfg).run_sharded(workload(), 4);
        assert_eq!(
            inline
                .shard_exec
                .expect("sharded runs report exec stats")
                .pool_spawns,
            0,
            "pool_threads=0 must never spawn"
        );
        let mut forced_cfg = c.clone();
        forced_cfg.shard.pool_threads = Some(3);
        let forced = Simulation::new(adc_agents(4), forced_cfg).run_sharded(workload(), 4);
        let exec = forced.shard_exec.expect("sharded runs report exec stats");
        assert!(exec.pool_spawns > 0, "{exec:?}");
        assert!(exec.pool_spawns <= 3, "{exec:?}");
        assert_eq!(
            inline.to_deterministic_json(),
            forced.to_deterministic_json()
        );
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn faulty_configs_rejected() {
        let mut c = config();
        c.faults.duplicate_prob = 0.1;
        let _ = Simulation::new(adc_agents(2), c).run_sharded(std::iter::empty(), 2);
    }

    #[test]
    #[should_panic(expected = "lookahead bound")]
    fn instant_networks_rejected() {
        let _ =
            Simulation::new(adc_agents(2), SimConfig::fast()).run_sharded(std::iter::empty(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_rejected() {
        let _ = Simulation::new(adc_agents(2), config()).run_sharded(std::iter::empty(), 0);
    }

    #[test]
    fn empty_workload_is_a_clean_no_op() {
        let report = Simulation::new(adc_agents(2), config()).run_sharded(std::iter::empty(), 2);
        assert_eq!(report.completed, 0);
        assert_eq!(report.events_processed, 0);
        let mut c = config();
        c.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(50),
        };
        let report = Simulation::new(adc_agents(2), c).run_sharded(std::iter::empty(), 2);
        assert_eq!(report.completed, 0);
        // The single-queue runner pops exactly one (exhausted) Inject.
        assert_eq!(report.events_processed, 1);
    }
}
