//! Results of a simulation run.

use crate::tracelog::TraceLog;
use adc_core::ProxyStats;
use adc_metrics::{Log2Histogram, Series, Summary};
use adc_obs::{ConvergenceReport, MetricsReport, ShardSlice, SpanReport};
use adc_workload::Phase;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Hit/request counts for one workload phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Completed requests in this phase.
    pub requests: u64,
    /// Proxy-cache hits in this phase.
    pub hits: u64,
}

impl PhaseStats {
    /// Hit rate within the phase (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Synchronization-layer telemetry from the sharded executor: evidence
/// the persistent worker pool and adaptive window widening actually
/// engaged on a given run. Host- and tuning-dependent by design, so it
/// rides next to the wall/CPU clocks rather than in the canonical JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardExecStats {
    /// Worker threads the persistent pool actually spawned — at most
    /// once each for the whole run. 0 means every window ran inline on
    /// the coordinator (single-core host, sequential injection, or
    /// `pool_threads: Some(0)`).
    pub pool_spawns: u64,
    /// Barrier rounds the coordinator executed (windows run).
    pub windows_advanced: u64,
    /// Barrier rounds at which adaptive widening extended the window
    /// past one lookahead grid step.
    pub windows_widened: u64,
    /// Lookahead grid barriers elided by widening: the synchronization
    /// rounds a fixed-step coordinator would have paid on the same
    /// schedule.
    pub windows_skipped: u64,
}

/// Wall-clock execution profile of one sharded run, collected when
/// [`ShardTuning::profile`](crate::ShardTuning::profile) is set. Every
/// field measures *how the host executed the run*, never what the run
/// computed, so the whole struct is excluded from
/// [`to_deterministic_json`](SimReport::to_deterministic_json) — the
/// canonical bytes must not move when the same simulation runs on a
/// slower machine or a different pool schedule.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardProfile {
    /// Shard count of the profiled run.
    pub shards: usize,
    /// Barrier rounds the coordinator executed (same quantity as
    /// [`ShardExecStats::windows_advanced`], duplicated here so the
    /// profile is self-contained).
    pub windows: u64,
    /// Cumulative wall-clock time each shard spent draining its windows,
    /// nanoseconds, indexed by shard. Inline windows (run on the
    /// coordinator) are attributed to the shard they drained.
    pub shard_drain_ns: Vec<u64>,
    /// Window drains each shard executed (including empty drains the
    /// claim cursor handed it).
    pub shard_windows: Vec<u64>,
    /// Events each shard processed, indexed by shard.
    pub shard_events: Vec<u64>,
    /// Wall-clock time the coordinator spent in its own claim-and-drain
    /// participation plus inline window execution, nanoseconds.
    pub coordinator_busy_ns: u64,
    /// Wall-clock time the coordinator spent parked at the barrier
    /// waiting for worker shards, nanoseconds. The headline stall
    /// metric: see [`barrier_wait_fraction`](ShardProfile::barrier_wait_fraction).
    pub coordinator_wait_ns: u64,
    /// Events drained per (shard, window): the window-occupancy
    /// distribution. Bucket 0 counts empty drains.
    pub window_occupancy: Log2Histogram,
    /// Cross-shard messages pending per (source, destination) outbox at
    /// each barrier, over all ordered shard pairs. Bucket 0 counts empty
    /// outboxes.
    pub outbox_depth: Log2Histogram,
    /// Chrome-trace lane slices (per-shard drains plus coordinator
    /// barrier waits), bounded; see [`slices_dropped`](ShardProfile::slices_dropped).
    pub slices: Vec<ShardSlice>,
    /// Slices not recorded because the bound was reached.
    pub slices_dropped: u64,
    /// Wall-clock offsets of each barrier completion, microseconds since
    /// run start (bounded like `slices`).
    pub barriers_us: Vec<u64>,
}

impl ShardProfile {
    /// Bound on recorded `slices` and `barriers_us` entries: enough for
    /// every window of a CI-scale run, small enough that a full-scale
    /// profiled run cannot balloon the report.
    pub const MAX_SLICES: usize = 1 << 16;

    /// Load-imbalance coefficient: max over mean of per-shard drain
    /// time. 1.0 means perfectly balanced; `k` means the slowest shard
    /// did `k`× the mean work, i.e. the pool idles `(k-1)/k` of its
    /// capacity at the barrier. 1.0 when nothing was drained.
    pub fn imbalance_coefficient(&self) -> f64 {
        let max = self.shard_drain_ns.iter().copied().max().unwrap_or(0);
        let total: u64 = self.shard_drain_ns.iter().sum();
        if max == 0 || self.shard_drain_ns.is_empty() {
            return 1.0;
        }
        // Counts are ≪ 2^53: exact in f64.
        let mean = total as f64 / self.shard_drain_ns.len() as f64;
        max as f64 / mean
    }

    /// Fraction of the coordinator's window-execution time spent parked
    /// at the barrier (0.0 when nothing was measured). High values mean
    /// the coordinator finishes its claim share early and stalls on a
    /// straggler shard.
    pub fn barrier_wait_fraction(&self) -> f64 {
        let total = self.coordinator_busy_ns + self.coordinator_wait_ns;
        if total == 0 {
            return 0.0;
        }
        self.coordinator_wait_ns as f64 / total as f64
    }

    /// Total wall-clock drain time across all shards, nanoseconds.
    pub fn total_drain_ns(&self) -> u64 {
        self.shard_drain_ns.iter().sum()
    }

    /// One-line human summary of the profile.
    pub fn summary(&self) -> String {
        format!(
            "shards={} windows={} drain_ms={:.1} wait_frac={:.3} imbalance={:.2}",
            self.shards,
            self.windows,
            self.total_drain_ns() as f64 / 1e6,
            self.barrier_wait_fraction(),
            self.imbalance_coefficient()
        )
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests that completed (reply reached the client).
    pub completed: u64,
    /// Requests served from some proxy cache.
    pub hits: u64,
    /// Per-phase breakdown, indexed by [`Phase`] order
    /// (fill, request I, request II).
    pub phases: [PhaseStats; 3],
    /// Hop counts per completed request.
    pub hops: Summary,
    /// End-to-end latency per completed request, in microseconds.
    pub latency_us: Summary,
    /// Streaming estimate of the median latency, microseconds.
    pub latency_p50_us: f64,
    /// Streaming estimate of the 99th-percentile latency, microseconds.
    pub latency_p99_us: f64,
    /// Moving-average hit rate sampled over the run (Figure 11 style).
    pub hit_series: Series,
    /// Moving-average hops sampled over the run (Figure 12 style).
    pub hops_series: Series,
    /// Final per-proxy counters.
    pub per_proxy: Vec<ProxyStats>,
    /// Objects cached per proxy at the end of the run.
    pub final_cache_sizes: Vec<usize>,
    /// Cache occupancy over time, one series per proxy (sampled on the
    /// same schedule as the hit-rate series).
    pub occupancy_series: Vec<Series>,
    /// Total message deliveries (including duplicates). A pure event
    /// count: the sharded executor merges it by summing per-shard
    /// counters.
    pub messages_delivered: u64,
    /// Total events the simulator processed (deliveries plus injection
    /// ticks) — the denominator for events/sec throughput numbers.
    /// Summed across shards; the sharded executor synthesizes the
    /// injection ticks its workers never pop so the field reconciles
    /// with the single-queue runner.
    pub events_processed: u64,
    /// Largest number of flows in flight at once. **Not** a sum: this is
    /// a maximum over the time-ordered global schedule, so the sharded
    /// executor replays injections and completions in `(time, flow)`
    /// order on the coordinator rather than summing per-shard peaks
    /// (which would overcount flows that never coexisted).
    pub peak_flows: usize,
    /// Fault-injected duplicate deliveries.
    pub duplicates_injected: u64,
    /// Replies that reached a client for an already-completed flow.
    pub client_orphans: u64,
    /// Requests that reached the origin after their flow had already
    /// completed (e.g. a duplicated delivery racing the original). The
    /// origin still answers them — with the nominal default object size,
    /// since the workload's true size left with the flow — but silently
    /// substituting that size used to hide the mismatch; now it is
    /// counted.
    pub orphan_origin_requests: u64,
    /// Scheduled proxy restarts that fired (churn injection).
    pub proxies_reset: u64,
    /// Object-body bytes fetched from the origin server (misses).
    pub bytes_from_origin: u64,
    /// Object-body bytes served out of proxy caches (hits).
    pub bytes_from_caches: u64,
    /// Message deliveries captured when tracing was enabled.
    pub trace: Option<TraceLog>,
    /// Mapping-convergence series (agreement, remaps, churn), present
    /// when [`SimConfig::convergence`](crate::SimConfig::convergence)
    /// was set.
    pub convergence: Option<ConvergenceReport>,
    /// Per-proxy metric families and histogram summaries, present when
    /// the run was driven through a
    /// [`MetricsProbe`](adc_obs::MetricsProbe) (e.g.
    /// [`Simulation::run_with_metrics`](crate::Simulation::run_with_metrics)).
    pub metrics: Option<MetricsReport>,
    /// Synchronization-layer telemetry from the sharded executor
    /// (`None` for single-threaded runs). Like the wall/CPU clocks this
    /// is *excluded* from [`to_deterministic_json`]: `pool_spawns`
    /// depends on the host's core count, and the widening schedule is a
    /// function of the shard count and tuning knobs, while the
    /// canonical JSON must be invariant across both.
    ///
    /// [`to_deterministic_json`]: SimReport::to_deterministic_json
    pub shard_exec: Option<ShardExecStats>,
    /// Per-flow latency attribution (per-segment and per-proxy
    /// breakdowns plus the slowest-flows digest), present when the run
    /// was driven through a [`SpanProbe`](adc_obs::SpanProbe) (e.g.
    /// [`Simulation::run_with_spans`](crate::Simulation::run_with_spans)).
    /// Derived entirely from the probe's event stream — attaching it
    /// never perturbs the simulation — but *excluded* from
    /// [`to_deterministic_json`](SimReport::to_deterministic_json) like
    /// the metrics body: the canonical bytes must not depend on which
    /// probes were attached.
    pub spans: Option<SpanReport>,
    /// Wall-clock execution profile of the sharded run, present when
    /// [`ShardTuning::profile`](crate::ShardTuning::profile) was set
    /// (`None` for single-threaded runs). Excluded from
    /// [`to_deterministic_json`](SimReport::to_deterministic_json) for
    /// the same reason as `wall_time`: every field is host telemetry.
    pub shard_profile: Option<ShardProfile>,
    /// Wall-clock time the simulation took (Figure 15 style).
    pub wall_time: Duration,
    /// CPU time the simulating thread consumed. Unlike [`wall_time`],
    /// this stays comparable when runs execute concurrently on worker
    /// threads; zero on platforms without a per-thread CPU clock.
    ///
    /// [`wall_time`]: SimReport::wall_time
    pub cpu_time: Duration,
}

impl SimReport {
    /// Overall hit rate across the whole run.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.completed as f64
        }
    }

    /// Mean hops per completed request.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean().unwrap_or(0.0)
    }

    /// Per-phase stats accessor.
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        match phase {
            Phase::Fill => &self.phases[0],
            Phase::RequestI => &self.phases[1],
            Phase::RequestII => &self.phases[2],
        }
    }

    /// Fraction of served bytes that did not travel from the origin —
    /// the bandwidth the proxy system saved.
    pub fn byte_hit_rate(&self) -> f64 {
        let total = self.bytes_from_origin + self.bytes_from_caches;
        if total == 0 {
            0.0
        } else {
            self.bytes_from_caches as f64 / total as f64
        }
    }

    /// Cluster-wide proxy counters (all proxies merged).
    pub fn cluster_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for p in &self.per_proxy {
            total.merge(p);
        }
        total
    }

    /// Deliveries the bounded [`TraceLog`] had to drop (0 when tracing
    /// was off). Non-zero means path-level analyses of this run are
    /// incomplete — surfaced so truncation is never silent.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, TraceLog::dropped)
    }

    /// Renders every simulation-determined field as a canonical JSON
    /// document: fixed key order, floats in shortest-roundtrip form, no
    /// whitespace. Two runs produce identical strings iff their
    /// simulation outputs are bit-identical, which makes this the byte
    /// comparator for the sharded-vs-single-threaded identity tests.
    ///
    /// Host-dependent telemetry (`wall_time`, `cpu_time`) is excluded,
    /// as is the [`metrics`](SimReport::metrics) body — a metrics
    /// registry has its own canonical form (the Prometheus exposition),
    /// which identity tests compare separately; only its presence is
    /// recorded here.
    pub fn to_deterministic_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        push_u64(&mut out, "completed", self.completed);
        push_u64(&mut out, "hits", self.hits);
        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_u64(&mut out, "requests", p.requests);
            push_u64(&mut out, "hits", p.hits);
            trim_comma(&mut out);
            out.push('}');
        }
        out.push_str("],");
        push_summary(&mut out, "hops", &self.hops);
        push_summary(&mut out, "latency_us", &self.latency_us);
        push_f64(&mut out, "latency_p50_us", self.latency_p50_us);
        push_f64(&mut out, "latency_p99_us", self.latency_p99_us);
        push_series(&mut out, "hit_series", &self.hit_series);
        push_series(&mut out, "hops_series", &self.hops_series);
        out.push_str("\"per_proxy\":[");
        for (i, p) in self.per_proxy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_u64(&mut out, "requests_received", p.requests_received);
            push_u64(&mut out, "local_hits", p.local_hits);
            push_u64(&mut out, "forwards_learned", p.forwards_learned);
            push_u64(&mut out, "forwards_random", p.forwards_random);
            push_u64(&mut out, "origin_loops", p.origin_loops);
            push_u64(&mut out, "origin_max_hops", p.origin_max_hops);
            push_u64(&mut out, "origin_this_miss", p.origin_this_miss);
            push_u64(&mut out, "replies_processed", p.replies_processed);
            push_u64(&mut out, "replies_orphaned", p.replies_orphaned);
            push_u64(&mut out, "cache_insertions", p.cache_insertions);
            push_u64(&mut out, "cache_evictions", p.cache_evictions);
            trim_comma(&mut out);
            out.push('}');
        }
        out.push_str("],\"final_cache_sizes\":[");
        for (i, &n) in self.final_cache_sizes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str("],\"occupancy_series\":[");
        for (i, s) in self.occupancy_series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_series_value(&mut out, s);
        }
        out.push_str("],");
        push_u64(&mut out, "messages_delivered", self.messages_delivered);
        push_u64(&mut out, "events_processed", self.events_processed);
        push_u64(&mut out, "peak_flows", self.peak_flows as u64);
        push_u64(&mut out, "duplicates_injected", self.duplicates_injected);
        push_u64(&mut out, "client_orphans", self.client_orphans);
        push_u64(
            &mut out,
            "orphan_origin_requests",
            self.orphan_origin_requests,
        );
        push_u64(&mut out, "proxies_reset", self.proxies_reset);
        push_u64(&mut out, "bytes_from_origin", self.bytes_from_origin);
        push_u64(&mut out, "bytes_from_caches", self.bytes_from_caches);
        push_u64(
            &mut out,
            "trace_len",
            self.trace.as_ref().map_or(0, |t| t.records().len() as u64),
        );
        push_u64(&mut out, "trace_dropped", self.trace_dropped());
        match &self.convergence {
            None => out.push_str("\"convergence\":null,"),
            Some(c) => {
                out.push_str("\"convergence\":{");
                push_series(&mut out, "agreement", &c.agreement);
                push_series(&mut out, "remaps", &c.remaps);
                push_series(&mut out, "churn", &c.churn);
                push_u64(&mut out, "samples", c.samples as u64);
                push_u64(&mut out, "total_remaps", c.total_remaps);
                push_u64(&mut out, "total_churn", c.total_churn);
                trim_comma(&mut out);
                out.push_str("},");
            }
        }
        out.push_str(if self.metrics.is_some() {
            "\"has_metrics\":true"
        } else {
            "\"has_metrics\":false"
        });
        out.push('}');
        out
    }

    /// A one-line human summary. Orphaned replies and trace-log drops
    /// are appended only when non-zero, so clean runs stay terse.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "completed={} hit_rate={:.4} mean_hops={:.2} wall={:?}",
            self.completed,
            self.hit_rate(),
            self.mean_hops(),
            self.wall_time
        );
        let orphaned = self.cluster_stats().replies_orphaned;
        if orphaned > 0 {
            line.push_str(&format!(" replies_orphaned={orphaned}"));
        }
        let trace_dropped = self.trace_dropped();
        if trace_dropped > 0 {
            line.push_str(&format!(" trace_dropped={trace_dropped}"));
        }
        line
    }
}

/// Appends `"key":value,` for an integer field.
fn push_u64(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

/// Appends `"key":value,` for a float field in shortest-roundtrip form
/// (Rust's `{:?}` for `f64`), which is a bijection on non-NaN bits — the
/// property the byte-identity tests rely on.
fn push_f64(out: &mut String, key: &str, value: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_f64_value(out, value);
    out.push(',');
}

fn push_f64_value(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value:?}"));
    } else {
        // Infinities/NaN only arise in fields the simulator never
        // produces; keep the document parseable anyway.
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, key: &str, value: Option<f64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    match value {
        Some(v) => push_f64_value(out, v),
        None => out.push_str("null"),
    }
    out.push(',');
}

/// Appends `"key":{summary},` from the accessor surface (the raw
/// Welford state stays private).
fn push_summary(out: &mut String, key: &str, s: &Summary) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":{");
    push_u64(out, "count", s.count());
    push_f64(out, "sum", s.sum());
    push_opt_f64(out, "mean", s.mean());
    push_opt_f64(out, "min", s.min());
    push_opt_f64(out, "max", s.max());
    push_opt_f64(out, "std_dev", s.std_dev());
    trim_comma(out);
    out.push_str("},");
}

fn push_series(out: &mut String, key: &str, s: &Series) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_series_value(out, s);
    out.push(',');
}

fn push_series_value(out: &mut String, s: &Series) {
    out.push_str("{\"name\":\"");
    // Series names are simulator-chosen identifiers; escape the two
    // JSON-significant characters anyway so the document stays valid.
    for c in s.name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push_str("\",\"points\":[");
    for (i, &(x, y)) in s.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_f64_value(out, x);
        out.push(',');
        push_f64_value(out, y);
        out.push(']');
    }
    out.push_str("]}");
}

/// Drops a trailing comma left by the `push_*` helpers before a closing
/// brace.
fn trim_comma(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_hit_rate() {
        let p = PhaseStats {
            requests: 10,
            hits: 7,
        };
        assert!((p.hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(PhaseStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn report_accessors() {
        let report = SimReport {
            completed: 4,
            hits: 2,
            phases: [
                PhaseStats {
                    requests: 2,
                    hits: 0,
                },
                PhaseStats {
                    requests: 2,
                    hits: 2,
                },
                PhaseStats::default(),
            ],
            hops: [2.0, 4.0].into_iter().collect(),
            latency_us: Summary::new(),
            latency_p50_us: 0.0,
            latency_p99_us: 0.0,
            hit_series: Series::new("hit"),
            hops_series: Series::new("hops"),
            per_proxy: vec![
                ProxyStats {
                    requests_received: 3,
                    ..Default::default()
                },
                ProxyStats {
                    requests_received: 1,
                    ..Default::default()
                },
            ],
            final_cache_sizes: vec![0, 0],
            occupancy_series: Vec::new(),
            messages_delivered: 12,
            events_processed: 16,
            peak_flows: 1,
            duplicates_injected: 0,
            client_orphans: 0,
            orphan_origin_requests: 0,
            proxies_reset: 0,
            bytes_from_origin: 0,
            bytes_from_caches: 0,
            trace: None,
            convergence: None,
            metrics: None,
            shard_exec: None,
            spans: None,
            shard_profile: None,
            wall_time: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
        };
        assert_eq!(report.hit_rate(), 0.5);
        assert_eq!(report.mean_hops(), 3.0);
        assert_eq!(report.phase(Phase::RequestI).hits, 2);
        assert_eq!(report.cluster_stats().requests_received, 4);
        assert!(report.summary_line().contains("hit_rate=0.5000"));
        // Clean runs do not mention orphans or trace drops.
        assert!(!report.summary_line().contains("replies_orphaned"));
        assert!(!report.summary_line().contains("trace_dropped"));
        assert_eq!(report.trace_dropped(), 0);
    }

    #[test]
    fn deterministic_json_is_valid_stable_and_field_sensitive() {
        let mut report = SimReport {
            completed: 4,
            hits: 2,
            phases: [PhaseStats::default(); 3],
            hops: [2.0, 4.0].into_iter().collect(),
            latency_us: Summary::new(),
            latency_p50_us: 1.5,
            latency_p99_us: 0.1 + 0.2, // non-round bits must round-trip
            hit_series: {
                let mut s = Series::new("hit_rate");
                s.push(1.0, 0.25);
                s
            },
            hops_series: Series::new("hops"),
            per_proxy: vec![ProxyStats {
                requests_received: 3,
                ..Default::default()
            }],
            final_cache_sizes: vec![7],
            occupancy_series: vec![Series::new("proxy0")],
            messages_delivered: 12,
            events_processed: 16,
            peak_flows: 1,
            duplicates_injected: 0,
            client_orphans: 0,
            orphan_origin_requests: 0,
            proxies_reset: 0,
            bytes_from_origin: 10,
            bytes_from_caches: 20,
            trace: None,
            convergence: None,
            metrics: None,
            shard_exec: None,
            spans: None,
            shard_profile: None,
            wall_time: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
        };
        let json = report.to_deterministic_json();
        adc_obs::validate_json(&json).expect("canonical report JSON must parse");
        // Host telemetry must not leak into the canonical form.
        report.wall_time = Duration::from_secs(999);
        report.cpu_time = Duration::from_secs(999);
        assert_eq!(json, report.to_deterministic_json());
        // Neither may span attribution or the shard profile: both are
        // probe/host products, not simulation outputs.
        report.spans = Some(adc_obs::SpanProbe::new().into_report());
        report.shard_profile = Some(ShardProfile {
            shards: 4,
            coordinator_wait_ns: 123,
            ..ShardProfile::default()
        });
        assert_eq!(json, report.to_deterministic_json());
        // Empty summaries render as nulls, floats round-trip exactly.
        assert!(json.contains("\"latency_us\":{\"count\":0,\"sum\":0.0,\"mean\":null"));
        assert!(json.contains(&format!("\"latency_p99_us\":{:?}", 0.1 + 0.2)));
        // Any simulation-determined field changes the bytes.
        report.hits = 3;
        assert_ne!(json, report.to_deterministic_json());
    }

    #[test]
    fn shard_profile_imbalance_and_wait_fraction() {
        let mut prof = ShardProfile {
            shards: 2,
            ..ShardProfile::default()
        };
        // Empty profile: trivially balanced, nothing waited.
        assert_eq!(prof.imbalance_coefficient(), 1.0);
        assert_eq!(prof.barrier_wait_fraction(), 0.0);
        // Max 300 over mean 200 → 1.5.
        prof.shard_drain_ns = vec![300, 100];
        assert!((prof.imbalance_coefficient() - 1.5).abs() < 1e-12);
        assert_eq!(prof.total_drain_ns(), 400);
        prof.coordinator_busy_ns = 75;
        prof.coordinator_wait_ns = 25;
        assert!((prof.barrier_wait_fraction() - 0.25).abs() < 1e-12);
        prof.windows = 7;
        let line = prof.summary();
        assert!(line.contains("windows=7"), "{line}");
        assert!(line.contains("imbalance=1.50"), "{line}");
        assert!(line.contains("wait_frac=0.250"), "{line}");
    }

    #[test]
    fn summary_line_surfaces_orphans_and_trace_drops() {
        let mut report = SimReport {
            completed: 1,
            hits: 0,
            phases: [PhaseStats::default(); 3],
            hops: Summary::new(),
            latency_us: Summary::new(),
            latency_p50_us: 0.0,
            latency_p99_us: 0.0,
            hit_series: Series::new("hit"),
            hops_series: Series::new("hops"),
            per_proxy: vec![ProxyStats {
                replies_orphaned: 3,
                ..Default::default()
            }],
            final_cache_sizes: vec![0],
            occupancy_series: Vec::new(),
            messages_delivered: 2,
            events_processed: 2,
            peak_flows: 1,
            duplicates_injected: 0,
            client_orphans: 0,
            orphan_origin_requests: 0,
            proxies_reset: 0,
            bytes_from_origin: 0,
            bytes_from_caches: 0,
            trace: Some(TraceLog::new(1)),
            convergence: None,
            metrics: None,
            shard_exec: None,
            spans: None,
            shard_profile: None,
            wall_time: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
        };
        // Overflow the one-record trace log so two deliveries drop.
        let log = report.trace.as_mut().unwrap();
        for i in 0..3 {
            log.record(crate::tracelog::DeliveryRecord {
                at: crate::time::SimTime::from_micros(i),
                request: adc_core::RequestId::new(adc_core::ClientId::new(0), i),
                from: adc_core::NodeId::Origin,
                to: adc_core::NodeId::Origin,
                is_request: true,
            });
        }
        assert_eq!(report.trace_dropped(), 2);
        let line = report.summary_line();
        assert!(line.contains("replies_orphaned=3"), "{line}");
        assert!(line.contains("trace_dropped=2"), "{line}");
    }
}
