//! Results of a simulation run.

use crate::tracelog::TraceLog;
use adc_core::ProxyStats;
use adc_metrics::{Series, Summary};
use adc_obs::{ConvergenceReport, MetricsReport};
use adc_workload::Phase;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Hit/request counts for one workload phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Completed requests in this phase.
    pub requests: u64,
    /// Proxy-cache hits in this phase.
    pub hits: u64,
}

impl PhaseStats {
    /// Hit rate within the phase (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests that completed (reply reached the client).
    pub completed: u64,
    /// Requests served from some proxy cache.
    pub hits: u64,
    /// Per-phase breakdown, indexed by [`Phase`] order
    /// (fill, request I, request II).
    pub phases: [PhaseStats; 3],
    /// Hop counts per completed request.
    pub hops: Summary,
    /// End-to-end latency per completed request, in microseconds.
    pub latency_us: Summary,
    /// Streaming estimate of the median latency, microseconds.
    pub latency_p50_us: f64,
    /// Streaming estimate of the 99th-percentile latency, microseconds.
    pub latency_p99_us: f64,
    /// Moving-average hit rate sampled over the run (Figure 11 style).
    pub hit_series: Series,
    /// Moving-average hops sampled over the run (Figure 12 style).
    pub hops_series: Series,
    /// Final per-proxy counters.
    pub per_proxy: Vec<ProxyStats>,
    /// Objects cached per proxy at the end of the run.
    pub final_cache_sizes: Vec<usize>,
    /// Cache occupancy over time, one series per proxy (sampled on the
    /// same schedule as the hit-rate series).
    pub occupancy_series: Vec<Series>,
    /// Total message deliveries (including duplicates).
    pub messages_delivered: u64,
    /// Total events the simulator processed (deliveries plus injection
    /// ticks) — the denominator for events/sec throughput numbers.
    pub events_processed: u64,
    /// Largest number of flows in flight at once.
    pub peak_flows: usize,
    /// Fault-injected duplicate deliveries.
    pub duplicates_injected: u64,
    /// Replies that reached a client for an already-completed flow.
    pub client_orphans: u64,
    /// Requests that reached the origin after their flow had already
    /// completed (e.g. a duplicated delivery racing the original). The
    /// origin still answers them — with the nominal default object size,
    /// since the workload's true size left with the flow — but silently
    /// substituting that size used to hide the mismatch; now it is
    /// counted.
    pub orphan_origin_requests: u64,
    /// Scheduled proxy restarts that fired (churn injection).
    pub proxies_reset: u64,
    /// Object-body bytes fetched from the origin server (misses).
    pub bytes_from_origin: u64,
    /// Object-body bytes served out of proxy caches (hits).
    pub bytes_from_caches: u64,
    /// Message deliveries captured when tracing was enabled.
    pub trace: Option<TraceLog>,
    /// Mapping-convergence series (agreement, remaps, churn), present
    /// when [`SimConfig::convergence`](crate::SimConfig::convergence)
    /// was set.
    pub convergence: Option<ConvergenceReport>,
    /// Per-proxy metric families and histogram summaries, present when
    /// the run was driven through a
    /// [`MetricsProbe`](adc_obs::MetricsProbe) (e.g.
    /// [`Simulation::run_with_metrics`](crate::Simulation::run_with_metrics)).
    pub metrics: Option<MetricsReport>,
    /// Wall-clock time the simulation took (Figure 15 style).
    pub wall_time: Duration,
    /// CPU time the simulating thread consumed. Unlike [`wall_time`],
    /// this stays comparable when runs execute concurrently on worker
    /// threads; zero on platforms without a per-thread CPU clock.
    ///
    /// [`wall_time`]: SimReport::wall_time
    pub cpu_time: Duration,
}

impl SimReport {
    /// Overall hit rate across the whole run.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.completed as f64
        }
    }

    /// Mean hops per completed request.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean().unwrap_or(0.0)
    }

    /// Per-phase stats accessor.
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        match phase {
            Phase::Fill => &self.phases[0],
            Phase::RequestI => &self.phases[1],
            Phase::RequestII => &self.phases[2],
        }
    }

    /// Fraction of served bytes that did not travel from the origin —
    /// the bandwidth the proxy system saved.
    pub fn byte_hit_rate(&self) -> f64 {
        let total = self.bytes_from_origin + self.bytes_from_caches;
        if total == 0 {
            0.0
        } else {
            self.bytes_from_caches as f64 / total as f64
        }
    }

    /// Cluster-wide proxy counters (all proxies merged).
    pub fn cluster_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for p in &self.per_proxy {
            total.merge(p);
        }
        total
    }

    /// Deliveries the bounded [`TraceLog`] had to drop (0 when tracing
    /// was off). Non-zero means path-level analyses of this run are
    /// incomplete — surfaced so truncation is never silent.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, TraceLog::dropped)
    }

    /// A one-line human summary. Orphaned replies and trace-log drops
    /// are appended only when non-zero, so clean runs stay terse.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "completed={} hit_rate={:.4} mean_hops={:.2} wall={:?}",
            self.completed,
            self.hit_rate(),
            self.mean_hops(),
            self.wall_time
        );
        let orphaned = self.cluster_stats().replies_orphaned;
        if orphaned > 0 {
            line.push_str(&format!(" replies_orphaned={orphaned}"));
        }
        let trace_dropped = self.trace_dropped();
        if trace_dropped > 0 {
            line.push_str(&format!(" trace_dropped={trace_dropped}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_hit_rate() {
        let p = PhaseStats {
            requests: 10,
            hits: 7,
        };
        assert!((p.hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(PhaseStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn report_accessors() {
        let report = SimReport {
            completed: 4,
            hits: 2,
            phases: [
                PhaseStats {
                    requests: 2,
                    hits: 0,
                },
                PhaseStats {
                    requests: 2,
                    hits: 2,
                },
                PhaseStats::default(),
            ],
            hops: [2.0, 4.0].into_iter().collect(),
            latency_us: Summary::new(),
            latency_p50_us: 0.0,
            latency_p99_us: 0.0,
            hit_series: Series::new("hit"),
            hops_series: Series::new("hops"),
            per_proxy: vec![
                ProxyStats {
                    requests_received: 3,
                    ..Default::default()
                },
                ProxyStats {
                    requests_received: 1,
                    ..Default::default()
                },
            ],
            final_cache_sizes: vec![0, 0],
            occupancy_series: Vec::new(),
            messages_delivered: 12,
            events_processed: 16,
            peak_flows: 1,
            duplicates_injected: 0,
            client_orphans: 0,
            orphan_origin_requests: 0,
            proxies_reset: 0,
            bytes_from_origin: 0,
            bytes_from_caches: 0,
            trace: None,
            convergence: None,
            metrics: None,
            wall_time: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
        };
        assert_eq!(report.hit_rate(), 0.5);
        assert_eq!(report.mean_hops(), 3.0);
        assert_eq!(report.phase(Phase::RequestI).hits, 2);
        assert_eq!(report.cluster_stats().requests_received, 4);
        assert!(report.summary_line().contains("hit_rate=0.5000"));
        // Clean runs do not mention orphans or trace drops.
        assert!(!report.summary_line().contains("replies_orphaned"));
        assert!(!report.summary_line().contains("trace_dropped"));
        assert_eq!(report.trace_dropped(), 0);
    }

    #[test]
    fn summary_line_surfaces_orphans_and_trace_drops() {
        let mut report = SimReport {
            completed: 1,
            hits: 0,
            phases: [PhaseStats::default(); 3],
            hops: Summary::new(),
            latency_us: Summary::new(),
            latency_p50_us: 0.0,
            latency_p99_us: 0.0,
            hit_series: Series::new("hit"),
            hops_series: Series::new("hops"),
            per_proxy: vec![ProxyStats {
                replies_orphaned: 3,
                ..Default::default()
            }],
            final_cache_sizes: vec![0],
            occupancy_series: Vec::new(),
            messages_delivered: 2,
            events_processed: 2,
            peak_flows: 1,
            duplicates_injected: 0,
            client_orphans: 0,
            orphan_origin_requests: 0,
            proxies_reset: 0,
            bytes_from_origin: 0,
            bytes_from_caches: 0,
            trace: Some(TraceLog::new(1)),
            convergence: None,
            metrics: None,
            wall_time: Duration::from_millis(1),
            cpu_time: Duration::from_millis(1),
        };
        // Overflow the one-record trace log so two deliveries drop.
        let log = report.trace.as_mut().unwrap();
        for i in 0..3 {
            log.record(crate::tracelog::DeliveryRecord {
                at: crate::time::SimTime::from_micros(i),
                request: adc_core::RequestId::new(adc_core::ClientId::new(0), i),
                from: adc_core::NodeId::Origin,
                to: adc_core::NodeId::Origin,
                is_request: true,
            });
        }
        assert_eq!(report.trace_dropped(), 2);
        let line = report.summary_line();
        assert!(line.contains("replies_orphaned=3"), "{line}");
        assert!(line.contains("trace_dropped=2"), "{line}");
    }
}
