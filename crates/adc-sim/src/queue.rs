//! A calendar queue: the event-loop's priority queue, tuned for the
//! simulator's access pattern.
//!
//! Discrete-event simulators pop events in nondecreasing time order and
//! push new events at-or-after the current time. A calendar queue (Brown,
//! CACM 1988) exploits that: events hash into fixed-width time buckets
//! arranged in a ring (a "year" of buckets), and popping scans the bucket
//! covering the current time window before advancing to the next. For the
//! simulator's workloads — a handful of distinct latency magnitudes — the
//! current bucket holds O(1) candidates, so push and pop are O(1)
//! amortised, versus O(log n) for a binary heap.
//!
//! Determinism contract: [`CalendarQueue::pop`] returns items in exactly
//! ascending `(at, seq)` order, bit-for-bit identical to a
//! `BinaryHeap<Reverse<(at, seq, ..)>>` (`seq` values must be unique; the
//! property test in `tests/queue_order.rs` pins this equivalence).

/// One scheduled item.
#[derive(Debug, Clone)]
struct Item<T> {
    at: u64,
    seq: u64,
    value: T,
}

/// A monotone priority queue over `(at, seq)` keys.
///
/// `seq` breaks ties between items scheduled for the same instant and
/// must be unique across live items (the simulator uses its event
/// insertion counter).
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Ring of time buckets; index = `(at >> shift) & mask`.
    buckets: Vec<Vec<Item<T>>>,
    /// log2 of the bucket width in time units.
    shift: u32,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: u64,
    /// Bucket the current time window falls in.
    cursor: usize,
    /// Exclusive upper bound of the current time window. The window is
    /// `[bucket_top - width, bucket_top)` and always spans exactly one
    /// bucket. Invariant: no live item has `at < bucket_top - width`.
    bucket_top: u64,
    len: usize,
    /// Debug-only record of the last key handed out, backing the
    /// pop-order `debug_assert` (the determinism contract above).
    #[cfg(debug_assertions)]
    last_pop: Option<(u64, u64)>,
}

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 256;
/// log2 of the bucket width: 1024 time units (~1ms at microsecond
/// resolution), matching the simulator's default latency scale.
const DEFAULT_SHIFT: u32 = 10;
/// Double the bucket count when the average occupancy exceeds this.
const MAX_LOAD: usize = 4;

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with the default geometry.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            shift: DEFAULT_SHIFT,
            mask: (INITIAL_BUCKETS - 1) as u64,
            cursor: 0,
            bucket_top: 1 << DEFAULT_SHIFT,
            len: 0,
            #[cfg(debug_assertions)]
            last_pop: None,
        }
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn width(&self) -> u64 {
        1 << self.shift
    }

    fn bucket_of(&self, at: u64) -> usize {
        // Masked by `mask < buckets.len()`, so the cast cannot truncate.
        ((at >> self.shift) & self.mask) as usize
    }

    /// Schedules `value` at `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, value: T) {
        // A push behind the last pop (never done by the simulator)
        // legitimately restarts the monotone-pop sequence.
        #[cfg(debug_assertions)]
        if self.last_pop.is_some_and(|last| (at, seq) < last) {
            self.last_pop = None;
        }
        // An item landing before the current window (possible for
        // arbitrary key sets, never for the simulator's monotone pushes)
        // rewinds the window so the pop invariant holds.
        let window_start = self.bucket_top - self.width();
        if at < window_start {
            self.cursor = self.bucket_of(at);
            self.bucket_top = (at >> self.shift).wrapping_add(1) << self.shift;
        }
        let idx = self.bucket_of(at);
        // bucket_of() masks idx below buckets.len().
        self.buckets[idx].push(Item { at, seq, value });
        self.len += 1;
        if self.len > MAX_LOAD * self.buckets.len() {
            self.grow();
        }
    }

    /// Returns the key of the minimum `(at, seq)` item without removing
    /// it.
    ///
    /// Takes `&mut self` because locating the minimum advances the
    /// bucket window exactly as [`pop`](CalendarQueue::pop) would — the
    /// amortised O(1) cursor walk is shared, so `peek_key` followed by
    /// `pop` re-scans only the (O(1)-occupancy) current bucket. The
    /// sharded executor uses this to decide whether the next event falls
    /// inside the current synchronization window without consuming it.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        // Scan windows in time order, mirroring pop()'s walk.
        for _ in 0..self.buckets.len() {
            let bucket = &self.buckets[self.cursor];
            let mut best: Option<(u64, u64)> = None;
            for item in bucket.iter() {
                if item.at < self.bucket_top && best.is_none_or(|key| (item.at, item.seq) < key) {
                    best = Some((item.at, item.seq));
                }
            }
            if best.is_some() {
                return best;
            }
            // mask fits usize: it is derived from buckets.len() - 1.
            self.cursor = (self.cursor + 1) & self.mask as usize;
            self.bucket_top += self.width();
        }
        // A full lap of empty windows: fall back to a direct scan and
        // jump the window to the global minimum, as pop() does.
        let (at, seq) = self
            .buckets
            .iter()
            .flat_map(|bucket| bucket.iter().map(|item| (item.at, item.seq)))
            .min()
            // Invariant: len > 0 was checked on entry, so some bucket
            // holds an item. adc-lint: allow(panic)
            .expect("len > 0 but no item found");
        self.cursor = self.bucket_of(at);
        self.bucket_top = ((at >> self.shift) + 1) << self.shift;
        Some((at, seq))
    }

    /// Removes and returns the minimum `(at, seq)` item.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Scan windows in time order; each window maps to exactly one
        // bucket, and no live item predates the current window.
        for _ in 0..self.buckets.len() {
            let bucket = &self.buckets[self.cursor];
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, item) in bucket.iter().enumerate() {
                if item.at < self.bucket_top
                    && best.is_none_or(|(_, at, seq)| (item.at, item.seq) < (at, seq))
                {
                    best = Some((i, item.at, item.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some(self.take(self.cursor, i));
            }
            // mask fits usize: it is derived from buckets.len() - 1.
            self.cursor = (self.cursor + 1) & self.mask as usize;
            self.bucket_top += self.width();
        }
        // A full lap of empty windows: the next item is more than a year
        // ahead. Fall back to a direct scan for the global minimum and
        // jump the window to it.
        let (b, i, at) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, item)| (b, i, item.at, item.seq))
            })
            .min_by_key(|&(_, _, at, seq)| (at, seq))
            .map(|(b, i, at, _)| (b, i, at))
            // Invariant: len > 0 was checked on entry, so some bucket
            // holds an item. adc-lint: allow(panic)
            .expect("len > 0 but no item found");
        self.cursor = self.bucket_of(at);
        self.bucket_top = ((at >> self.shift) + 1) << self.shift;
        Some(self.take(b, i))
    }

    fn take(&mut self, bucket: usize, index: usize) -> (u64, u64, T) {
        // Callers pass coordinates of an item they just located.
        let item = self.buckets[bucket].swap_remove(index);
        self.len -= 1;
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_pop.is_none_or(|last| last < (item.at, item.seq)),
                "calendar queue popped {:?} after {:?}",
                (item.at, item.seq),
                self.last_pop
            );
            self.last_pop = Some((item.at, item.seq));
        }
        (item.at, item.seq, item.value)
    }

    /// Doubles the bucket count, keeping the bucket width (and therefore
    /// the current window) unchanged.
    fn grow(&mut self) {
        let new_count = self.buckets.len() * 2;
        // Bucket counts stay far below u64::MAX.
        let new_mask = (new_count - 1) as u64;
        let mut new_buckets: Vec<Vec<Item<T>>> = (0..new_count).map(|_| Vec::new()).collect();
        for bucket in self.buckets.drain(..) {
            for item in bucket {
                // Masked below new_count, so in bounds and not truncated.
                let idx = ((item.at >> self.shift) & new_mask) as usize;
                new_buckets[idx].push(item);
            }
        }
        self.buckets = new_buckets;
        self.mask = new_mask;
        let window_start = self.bucket_top - self.width();
        // Masked by mask < buckets.len(), so the cast cannot truncate.
        self.cursor = ((window_start >> self.shift) & self.mask) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(5, 0, "a");
        q.push(3, 1, "b");
        q.push(5, 2, "c");
        q.push(0, 3, "d");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((0, 3, "d")));
        assert_eq!(q.pop(), Some((3, 1, "b")));
        assert_eq!(q.pop(), Some((5, 0, "a")));
        assert_eq!(q.pop(), Some((5, 2, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn handles_gaps_larger_than_a_year() {
        let mut q = CalendarQueue::new();
        let year = 256u64 << DEFAULT_SHIFT;
        q.push(0, 0, 0u32);
        q.push(10 * year + 17, 1, 1);
        q.push(3 * year + 2, 2, 2);
        assert_eq!(q.pop(), Some((0, 0, 0)));
        assert_eq!(q.pop(), Some((3 * year + 2, 2, 2)));
        assert_eq!(q.pop(), Some((10 * year + 17, 1, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaves_pushes_and_pops_monotonically() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut last = (0u64, 0u64);
        q.push(0, seq, ());
        seq += 1;
        let mut popped = 0;
        while let Some((at, s, ())) = q.pop() {
            assert!(
                (at, s) >= last,
                "out of order: {:?} after {:?}",
                (at, s),
                last
            );
            last = (at, s);
            popped += 1;
            if popped < 500 {
                // Mimic the simulator: reschedule at a few latency scales.
                for delta in [1_000, 2_000, 40_000] {
                    q.push(at + delta, seq, ());
                    seq += 1;
                    q.pop().unwrap();
                }
                q.push(at + (popped % 7) * 1_000, seq, ());
                seq += 1;
            }
        }
        assert_eq!(popped, 500);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut q = CalendarQueue::new();
        let n = (MAX_LOAD * INITIAL_BUCKETS * 3) as u64;
        for i in 0..n {
            q.push(i * 13 % 50_000, i, i);
        }
        assert_eq!(q.len(), n as usize);
        let mut last = None;
        for _ in 0..n {
            let (at, seq, _) = q.pop().unwrap();
            if let Some(prev) = last {
                assert!((at, seq) > prev);
            }
            last = Some((at, seq));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peek_key_matches_pop_without_consuming() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(5, 0, "a");
        q.push(3, 1, "b");
        assert_eq!(q.peek_key(), Some((3, 1)));
        assert_eq!(q.peek_key(), Some((3, 1)), "peek must not consume");
        assert_eq!(q.pop(), Some((3, 1, "b")));
        assert_eq!(q.peek_key(), Some((5, 0)));
        assert_eq!(q.pop(), Some((5, 0, "a")));
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn peek_key_jumps_year_gaps_and_allows_rewinds() {
        let mut q = CalendarQueue::new();
        let year = 256u64 << DEFAULT_SHIFT;
        q.push(10 * year + 17, 0, ());
        // Peek across a multi-year gap (exercises the full-lap fallback).
        assert_eq!(q.peek_key(), Some((10 * year + 17, 0)));
        // A past push after the window jumped ahead must still peek
        // first.
        q.push(5, 1, ());
        assert_eq!(q.peek_key(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 1, ())));
        assert_eq!(q.pop(), Some((10 * year + 17, 0, ())));
    }

    #[test]
    fn rewinds_for_out_of_window_past_pushes() {
        let mut q = CalendarQueue::new();
        q.push(1 << 20, 0, "future");
        assert_eq!(q.pop(), Some((1 << 20, 0, "future")));
        // The window has advanced past zero; a push in the past must
        // still pop first.
        q.push(5, 1, "past");
        q.push((1 << 20) + 1, 2, "later");
        assert_eq!(q.pop(), Some((5, 1, "past")));
        assert_eq!(q.pop(), Some(((1 << 20) + 1, 2, "later")));
    }
}
