//! Per-thread CPU time, for timing runs that execute on worker threads.
//!
//! Wall-clock time is meaningless when many simulations share the machine:
//! a run that was descheduled looks slow even though it did no extra work.
//! `CLOCK_THREAD_CPUTIME_ID` counts only the CPU time the *calling thread*
//! actually consumed, so parallel sweep workers can report comparable
//! per-run costs. On non-Linux targets the probe returns `Duration::ZERO`
//! and callers fall back to wall-clock timing.

use std::time::Duration;

#[cfg(target_os = "linux")]
mod linux {
    use std::time::Duration;

    // From <time.h>; stable part of the Linux ABI.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        // CPU-time telemetry only, never simulation state.
        // adc-lint: allow(determinism)
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    pub fn thread_cpu_now() -> Duration {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable Timespec matching the C layout.
        // Telemetry only. adc-lint: allow(determinism, determinism-purity)
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return Duration::ZERO;
        }
        Duration::new(
            ts.tv_sec.max(0) as u64,
            ts.tv_nsec.clamp(0, 999_999_999) as u32,
        )
    }
}

/// CPU time consumed by the calling thread so far.
///
/// Monotonic within a thread; differences between two probes on the same
/// thread measure the CPU time that thread spent in between. Returns
/// [`Duration::ZERO`] where the probe is unavailable (non-Linux targets or
/// a failing `clock_gettime`), so always diff with `saturating_sub`.
pub fn thread_cpu_now() -> Duration {
    #[cfg(target_os = "linux")]
    {
        linux::thread_cpu_now()
    }
    #[cfg(not(target_os = "linux"))]
    {
        Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_within_thread() {
        let a = thread_cpu_now();
        // Burn a little CPU so the clock visibly advances on Linux.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = thread_cpu_now();
        assert!(b >= a, "thread CPU clock went backwards: {a:?} -> {b:?}");
        #[cfg(target_os = "linux")]
        assert!(b > Duration::ZERO);
    }

    #[test]
    fn threads_have_independent_clocks() {
        // A fresh thread's CPU clock starts near zero even if this thread
        // has already burned CPU.
        let in_thread = std::thread::spawn(thread_cpu_now).join().unwrap();
        assert!(in_thread < Duration::from_secs(1));
    }
}
