//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use adc_sim::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert!(t < SimTime::from_millis(6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_micros(1500).as_millis_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 14);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_micros(5_500).to_string(), "5.500ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
