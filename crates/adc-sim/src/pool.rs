//! Persistent worker pool for the sharded executor.
//!
//! PR 6's coordinator spawned fresh OS threads through
//! `std::thread::scope` for *every* lookahead window — tens of thousands
//! of spawns per run, which is why 4-shard execution measured slower
//! than one thread. This module replaces that with threads spawned
//! **once per run** (lazily, on the first window that has more than one
//! active shard) and a sense-reversing barrier built from four atomics:
//!
//! * `epoch` — the publication counter. The coordinator bumps it to
//!   announce "a new window is ready"; a worker that has seen epoch `e`
//!   sleeps (`thread::park`) until the value differs from `e`.
//! * `window_end` — the barrier timestamp of the published window,
//!   written before the epoch bump and read by workers after they claim
//!   work (release/acquire pairing through `epoch` and `cursor`).
//! * `cursor` — the claim index. Every participant (workers *and* the
//!   coordinator, which always executes shards too) does
//!   `fetch_add(1)` and runs the shard cell at the returned index until
//!   the cursor passes the cell count. Claiming distributes load
//!   dynamically: a worker stuck on a heavy shard simply claims fewer
//!   cells, and a pool smaller than the shard count still executes every
//!   shard.
//! * `done` — the completion counter. The participant whose increment
//!   completes the last cell unparks the coordinator, which waits for
//!   `done == cells` before touching any shard again.
//!
//! Shard state lives in `Mutex` cells. The locks are *never contended*
//! by construction — the claim cursor hands each cell to exactly one
//! participant per window, and the coordinator only locks between
//! barriers, while every worker is parked or draining other cells — so
//! each lock is a handful of uncontended atomic operations per window.
//! They exist to make the hand-off points explicit and safe: the mutex
//! acquire/release pairs are exactly the synchronization edges of the
//! barrier protocol.
//!
//! # Determinism
//!
//! Scheduling decides *who* runs a cell's window, never *what* the cell
//! computes: a window's work is a pure function of the cell's own state
//! and `window_end`, cells never touch each other inside a window, and
//! the coordinator observes results only after the `done` barrier. Every
//! schedule therefore produces bit-identical shard states — including
//! the degenerate schedule with zero workers, where the coordinator
//! claims every cell itself (the automatic behaviour on a single-core
//! host, and the forced behaviour under `pool_threads: Some(0)`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread::{self, Thread};
// Wall-clock time feeds the execution profiler only, never window
// content. adc-lint: allow(determinism)
use std::time::Instant;

/// One cell's slice of a window: drain every pending event scheduled
/// strictly before `window_end`.
pub(crate) trait WindowTask: Send {
    fn run_window(&mut self, window_end: u64);
}

/// Wall-clock split of one coordinator window, measured by
/// [`Pool::run_window_timed`]: the coordinator's own claim-and-drain
/// participation vs the time it spent parked at the barrier waiting for
/// worker shards to finish their cells.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WindowTiming {
    /// Nanoseconds the coordinator spent draining cells it claimed.
    pub busy_ns: u64,
    /// Nanoseconds the coordinator spent parked at the barrier.
    pub wait_ns: u64,
}

/// The barrier word shared by the coordinator and every worker.
struct Ctl {
    epoch: AtomicU64,
    window_end: AtomicU64,
    cursor: AtomicUsize,
    done: AtomicUsize,
    shutdown: AtomicBool,
    /// Parked-coordinator handle for the last-finisher unpark.
    coordinator: Thread,
}

/// Drains every cell the claim cursor hands out; shared verbatim by
/// workers and the coordinator's own participation loop.
fn claim_and_run<W: WindowTask>(ctl: &Ctl, cells: &[Mutex<W>]) {
    let n = cells.len();
    loop {
        let i = ctl.cursor.fetch_add(1, Ordering::AcqRel);
        if i >= n {
            return;
        }
        let window_end = ctl.window_end.load(Ordering::Acquire);
        {
            // Uncontended by protocol (see module docs); a poisoned cell
            // means another participant panicked and the run is already
            // lost — propagate by running anyway and letting the
            // coordinator's own unwind surface it.
            let mut cell = cells[i].lock().unwrap_or_else(PoisonError::into_inner);
            cell.run_window(window_end);
        }
        if ctl.done.fetch_add(1, Ordering::AcqRel) + 1 == n {
            ctl.coordinator.unpark();
        }
    }
}

fn worker_loop<W: WindowTask>(ctl: &Ctl, cells: &[Mutex<W>]) {
    // Epoch 0 is "no window published yet"; starting below the live
    // value lets a worker spawned mid-dispatch join the very window that
    // triggered its spawn.
    let mut seen = 0u64;
    loop {
        let epoch = ctl.epoch.load(Ordering::Acquire);
        if epoch == seen {
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            // A stale unpark token only costs one spin of this loop.
            thread::park();
            continue;
        }
        seen = epoch;
        if ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        claim_and_run(ctl, cells);
    }
}

/// A run-scoped handle to the worker pool; created by [`with_pool`],
/// which owns the `thread::scope` the workers live in.
pub(crate) struct Pool<'scope, 'env, W> {
    scope: &'scope thread::Scope<'scope, 'env>,
    ctl: &'env Ctl,
    cells: &'env [Mutex<W>],
    /// Upper bound on workers ever spawned (0 = always inline).
    target_workers: usize,
    /// Unparkable handles of the workers spawned so far.
    workers: Vec<Thread>,
}

impl<W: WindowTask> Pool<'_, '_, W> {
    /// Workers actually spawned so far (the `pool_spawns` telemetry —
    /// the run-level count reaches callers via [`with_pool`]'s return).
    #[cfg(test)]
    pub(crate) fn spawned(&self) -> usize {
        self.workers.len()
    }

    /// Executes one window over every cell with pending work.
    /// `parallelism_hint` is the number of cells that will actually do
    /// work; at most `hint - 1` workers are woken (the coordinator
    /// participates), and missing workers are spawned on demand —
    /// so a run that never needs parallelism never creates a thread.
    pub(crate) fn run_window(&mut self, window_end: u64, parallelism_hint: usize) {
        self.dispatch(window_end, parallelism_hint);
        claim_and_run(self.ctl, self.cells);
        self.wait_barrier();
    }

    /// [`run_window`](Pool::run_window) with the coordinator's own
    /// wall-clock split measured for the execution profiler. Kept
    /// separate so unprofiled runs never touch a clock.
    pub(crate) fn run_window_timed(
        &mut self,
        window_end: u64,
        parallelism_hint: usize,
    ) -> WindowTiming {
        self.dispatch(window_end, parallelism_hint);
        // Profiler telemetry only; never feeds simulated state.
        // adc-lint: allow(determinism, determinism-purity)
        let t0 = Instant::now();
        claim_and_run(self.ctl, self.cells);
        // Cell work is done; everything past here is barrier stall.
        // adc-lint: allow(determinism, determinism-purity)
        let t1 = Instant::now();
        self.wait_barrier();
        WindowTiming {
            // Durations ≪ 2^64 ns (584 years): the cast is lossless.
            busy_ns: (t1 - t0).as_nanos() as u64,
            wait_ns: t1.elapsed().as_nanos() as u64,
        }
    }

    /// Publishes a window to the pool: spawns any still-missing workers,
    /// resets the barrier words, bumps the epoch and wakes the workers.
    fn dispatch(&mut self, window_end: u64, parallelism_hint: usize) {
        let want = parallelism_hint.saturating_sub(1).min(self.target_workers);
        while self.workers.len() < want {
            let ctl = self.ctl;
            let cells = self.cells;
            let handle = self.scope.spawn(move || worker_loop(ctl, cells));
            self.workers.push(handle.thread().clone());
        }
        // ordering: Relaxed — the AcqRel epoch bump below is the sole
        // publication point; workers read this only after acquire-epoch.
        self.ctl.done.store(0, Ordering::Relaxed);
        // ordering: Relaxed — published by the same epoch bump as above.
        self.ctl.window_end.store(window_end, Ordering::Relaxed);
        self.ctl.cursor.store(0, Ordering::Release);
        // The release bump publishes done/window_end/cursor to any
        // worker whose acquire load observes the new epoch.
        self.ctl.epoch.fetch_add(1, Ordering::AcqRel);
        for worker in self.workers.iter().take(want) {
            worker.unpark();
        }
    }

    /// Parks until every cell of the published window is done. The last
    /// finisher unparks us, and leftover unpark tokens from earlier
    /// windows merely make one park return early — the loop re-checks.
    fn wait_barrier(&self) {
        let n = self.cells.len();
        while self.ctl.done.load(Ordering::Acquire) < n {
            thread::park();
        }
    }
}

/// Runs `body` with a lazily-spawned worker pool over `cells`, joining
/// every worker before returning. `target_workers` caps the pool size;
/// 0 means `body` still gets a pool but every window runs inline on the
/// calling thread.
pub(crate) fn with_pool<W: WindowTask, R>(
    cells: &[Mutex<W>],
    target_workers: usize,
    body: impl FnOnce(&mut Pool<'_, '_, W>) -> R,
) -> (R, usize) {
    let ctl = Ctl {
        epoch: AtomicU64::new(0),
        window_end: AtomicU64::new(0),
        cursor: AtomicUsize::new(cells.len()),
        done: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        coordinator: thread::current(),
    };
    thread::scope(|scope| {
        let mut pool = Pool {
            scope,
            ctl: &ctl,
            cells,
            target_workers,
            workers: Vec::new(),
        };
        let result = body(&mut pool);
        // Wake everyone into the shutdown check; the cursor is already
        // exhausted from the last window, so nobody claims work.
        ctl.shutdown.store(true, Ordering::Release);
        ctl.epoch.fetch_add(1, Ordering::AcqRel);
        for worker in &pool.workers {
            worker.unpark();
        }
        (result, pool.workers.len())
    })
}

/// Default pool size for `shards` shard cells: one participant per
/// available core, minus the coordinator (which always executes shards
/// too), and never more than could be useful. On a single-core host
/// this is 0 — fully inline execution, no threads, no atomics traffic.
pub(crate) fn default_workers(shards: usize) -> usize {
    let cores = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    cores.min(shards).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        runs: u64,
        last_end: u64,
    }

    impl WindowTask for Counter {
        fn run_window(&mut self, window_end: u64) {
            self.runs += 1;
            self.last_end = window_end;
        }
    }

    fn cells(n: usize) -> Vec<Mutex<Counter>> {
        (0..n)
            .map(|_| {
                Mutex::new(Counter {
                    runs: 0,
                    last_end: 0,
                })
            })
            .collect()
    }

    /// Every cell runs exactly once per window, for any worker count —
    /// including zero (inline) and more workers than cells.
    #[test]
    fn every_cell_runs_once_per_window() {
        for workers in [0, 1, 3, 8] {
            let cells = cells(5);
            let ((), spawned) = with_pool(&cells, workers, |pool| {
                for window in 1..=100u64 {
                    pool.run_window(window * 10, 5);
                }
            });
            assert!(spawned <= workers, "spawned {spawned} > target {workers}");
            for cell in &cells {
                let c = cell.lock().unwrap();
                assert_eq!(c.runs, 100, "workers={workers}");
                assert_eq!(c.last_end, 1000, "workers={workers}");
            }
        }
    }

    /// A parallelism hint of 1 never spawns: the coordinator does all
    /// the work inline even when the pool would allow workers.
    #[test]
    fn single_active_windows_spawn_nothing() {
        let cells = cells(3);
        let ((), spawned) = with_pool(&cells, 4, |pool| {
            for window in 1..=50u64 {
                pool.run_window(window, 1);
            }
        });
        assert_eq!(spawned, 0);
        for cell in &cells {
            assert_eq!(cell.lock().unwrap().runs, 50);
        }
    }

    /// The timed window variant runs every cell exactly like the plain
    /// one and reports a busy/wait split that covers real work.
    #[test]
    fn timed_windows_measure_the_coordinator_split() {
        struct Sleeper(u64);
        impl WindowTask for Sleeper {
            fn run_window(&mut self, _window_end: u64) {
                self.0 += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        // Inline (zero workers): the coordinator drains every cell
        // itself, so its busy time covers all three sleeps and the
        // barrier wait is (near) zero.
        let cells: Vec<Mutex<Sleeper>> = (0..3).map(|_| Mutex::new(Sleeper(0))).collect();
        let ((), spawned) = with_pool(&cells, 0, |pool| {
            let t = pool.run_window_timed(10, 3);
            assert!(
                t.busy_ns >= 3 * 2_000_000,
                "inline busy {} < 3 sleeps",
                t.busy_ns
            );
        });
        assert_eq!(spawned, 0);
        for cell in &cells {
            assert_eq!(cell.lock().unwrap().0, 1);
        }
        // With workers, the split still accounts every cell exactly once
        // (who ran what is scheduling; the counts must not move).
        let cells: Vec<Mutex<Sleeper>> = (0..4).map(|_| Mutex::new(Sleeper(0))).collect();
        let ((), _) = with_pool(&cells, 3, |pool| {
            for window in 1..=5u64 {
                let _ = pool.run_window_timed(window, 4);
            }
        });
        for cell in &cells {
            assert_eq!(cell.lock().unwrap().0, 5);
        }
    }

    /// Workers spawn lazily and only up to the useful count.
    #[test]
    fn workers_spawn_lazily_up_to_the_hint() {
        let cells = cells(6);
        let ((), spawned) = with_pool(&cells, 16, |pool| {
            pool.run_window(1, 1);
            assert_eq!(pool.spawned(), 0);
            pool.run_window(2, 3);
            assert_eq!(pool.spawned(), 2);
            pool.run_window(3, 2);
            assert_eq!(pool.spawned(), 2, "shrinking hints never spawn");
            pool.run_window(4, 6);
            assert_eq!(pool.spawned(), 5);
        });
        assert_eq!(spawned, 5);
        for cell in &cells {
            assert_eq!(cell.lock().unwrap().runs, 4);
        }
    }
}
