//! The discrete-event simulation loop.

use crate::config::{ChurnEvent, ClientAssignment, InjectionMode, SimConfig};
use crate::flows::FlowTable;
use crate::queue::CalendarQueue;
use crate::report::{PhaseStats, SimReport};
use crate::time::SimTime;
use crate::tracelog::{DeliveryRecord, TraceLog};
use adc_core::{
    Action, ActionSink, CacheAgent, Message, NodeId, ObjectId, ProxyId, Reply, Request, RequestId,
};
use adc_metrics::{MovingAverage, P2Quantile, Sampler, Summary};
use adc_obs::{ConvergenceConfig, ConvergenceTracker, NullProbe, Probe, SimEvent};
use adc_workload::{Phase, RequestRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
// Wall-clock time feeds report telemetry only, never simulation
// state. adc-lint: allow(determinism)
use std::time::Instant;

/// Per-flow bookkeeping from injection to completion.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    start: SimTime,
    hops: u32,
    size: u32,
    phase: Phase,
}

/// Live state for the periodic convergence sampler: injected-request
/// counts (to pick the hot set) plus the tracker folding snapshots into
/// series.
struct ConvState {
    cfg: ConvergenceConfig,
    /// Ordered map: the hot-set selection iterates it, and that order
    /// must not depend on a randomized hasher.
    counts: BTreeMap<u64, u64>,
    tracker: ConvergenceTracker,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Deliver `message` from `from` to `to`.
    Deliver {
        from: NodeId,
        to: NodeId,
        message: Message,
    },
    /// Pull the next request from the workload (open-loop mode).
    Inject,
}

/// A deterministic discrete-event simulation of one proxy cluster.
///
/// Generic over the agent type, so ADC proxies and baseline hashing
/// proxies run under identical accounting. See the crate docs for a
/// complete example.
#[derive(Debug)]
pub struct Simulation<A> {
    /// Dense-id proxy agents; the sharded executor re-partitions them.
    pub(crate) agents: Vec<A>,
    /// Validated configuration (see [`Simulation::new`]).
    pub(crate) config: SimConfig,
}

impl<A: CacheAgent> Simulation<A> {
    /// Creates a simulation over the given proxy agents.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty, agent IDs are not dense `0..n`, or
    /// the configuration is invalid.
    pub fn new(agents: Vec<A>, config: SimConfig) -> Self {
        assert!(!agents.is_empty(), "need at least one proxy agent");
        for (i, a) in agents.iter().enumerate() {
            assert_eq!(
                a.proxy_id(),
                ProxyId::new(i as u32), // dense ids: i < agent count ≤ u32::MAX
                "agent IDs must be dense 0..n in order"
            );
        }
        // Documented precondition (see "# Panics"). adc-lint: allow(panic)
        config.validate().expect("invalid simulator configuration");
        if let Some(matrix) = &config.proxy_latency_matrix {
            assert_eq!(
                matrix.len(),
                agents.len(),
                "proxy_latency_matrix must match the proxy count"
            );
        }
        Simulation { agents, config }
    }

    /// Number of proxies.
    pub fn num_proxies(&self) -> usize {
        self.agents.len()
    }

    /// Runs the workload to completion and returns the report together
    /// with the agents (for post-run inspection). Observability is off
    /// ([`NullProbe`]); the probe plumbing compiles away entirely, so
    /// this is byte-for-byte the unobserved hot path.
    pub fn run_with_agents(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
    ) -> (SimReport, Vec<A>) {
        self.run_observed_with_agents(workload, &mut NullProbe)
    }

    /// Runs the workload with every simulation event fed through
    /// `probe`, returning the report and the agents.
    ///
    /// The probe is ticked with virtual time (microseconds) before each
    /// event is processed, then receives the typed [`SimEvent`]s the
    /// agents and the runner emit. With [`NullProbe`] every emission
    /// site is statically dead code, so observability costs nothing
    /// unless a real probe is attached.
    pub fn run_observed_with_agents<P: Probe>(
        mut self,
        workload: impl IntoIterator<Item = RequestRecord>,
        probe: &mut P,
    ) -> (SimReport, Vec<A>) {
        // Wall telemetry only. adc-lint: allow(determinism, determinism-purity)
        let wall_start = Instant::now();
        let cpu_start = crate::cputime::thread_cpu_now();
        let n = self.agents.len() as u32; // proxy counts stay tiny
        let mut workload = workload.into_iter();
        let mut agent_rng = StdRng::seed_from_u64(self.config.seed ^ 0xA6E7);
        let mut assign_rng = StdRng::seed_from_u64(self.config.seed ^ 0xA551);
        let mut fault_rng = StdRng::seed_from_u64(self.config.seed ^ 0xFA17);

        // Events pop in exactly ascending `(at, seq)` order — the same
        // total order the original binary-heap loop used; the calendar
        // queue only changes the constant factor (see the module docs of
        // `queue` and the property test pinning the equivalence).
        let mut queue: CalendarQueue<EventKind> = CalendarQueue::new();
        let mut event_seq: u64 = 0;
        let mut now = SimTime::ZERO;
        let mut flows: FlowTable<FlowState> = FlowTable::new();
        let mut sink = ActionSink::new();
        let mut events_processed: u64 = 0;
        let mut orphan_origin_requests: u64 = 0;

        // Metrics.
        let mut completed: u64 = 0;
        let mut hits: u64 = 0;
        let mut phases = [PhaseStats::default(); 3];
        let mut hops_summary = Summary::new();
        let mut latency_summary = Summary::new();
        let mut latency_p50 = P2Quantile::new(0.5);
        let mut latency_p99 = P2Quantile::new(0.99);
        let mut hit_window = MovingAverage::new(self.config.hit_window);
        let mut hops_window = MovingAverage::new(self.config.hit_window);
        let mut hit_sampler = Sampler::new("hit_rate", self.config.sample_every);
        let mut hops_sampler = Sampler::new("hops", self.config.sample_every);
        // Occupancy samplers are optional (sweeps never read them) and
        // unnamed until the report is built, keeping the hot path free of
        // string formatting.
        let mut occupancy: Option<Vec<Sampler>> = self.config.sample_occupancy.then(|| {
            (0..self.agents.len())
                .map(|_| Sampler::new("", self.config.sample_every))
                .collect()
        });
        let mut messages_delivered: u64 = 0;
        let mut duplicates_injected: u64 = 0;
        let mut client_orphans: u64 = 0;
        let mut bytes_from_origin: u64 = 0;
        let mut bytes_from_caches: u64 = 0;
        let mut trace =
            (self.config.trace_capacity > 0).then(|| TraceLog::new(self.config.trace_capacity));
        let mut conv: Option<ConvState> = self.config.convergence.map(|cfg| ConvState {
            cfg,
            counts: BTreeMap::new(),
            tracker: ConvergenceTracker::new(),
        });

        let assignment = self.config.assignment;
        let base_latency = self.config.latency;
        let matrix = self.config.proxy_latency_matrix.clone();
        let latency = move |from: NodeId, to: NodeId| -> SimTime {
            if let (Some(m), NodeId::Proxy(a), NodeId::Proxy(b)) = (&matrix, from, to) {
                if a != b {
                    // Matrix is n×n over dense proxy ids (checked in new()).
                    return m[a.raw() as usize][b.raw() as usize];
                }
            }
            base_latency.latency(from, to)
        };
        let faults = self.config.faults;
        let injection = self.config.injection;
        let mut churn: Vec<ChurnEvent> = self.config.churn.clone();
        churn.sort_by_key(|c| c.after_completed);
        let mut churn_idx = 0;
        let mut proxies_reset: u64 = 0;

        let push = |queue: &mut CalendarQueue<EventKind>,
                    event_seq: &mut u64,
                    at: SimTime,
                    kind: EventKind| {
            queue.push(at.as_micros(), *event_seq, kind);
            *event_seq += 1;
        };

        // Injects the next workload request, if any. Returns false when
        // the workload is exhausted.
        let mut inject = |queue: &mut CalendarQueue<EventKind>,
                          event_seq: &mut u64,
                          now: SimTime,
                          flows: &mut FlowTable<FlowState>,
                          assign_rng: &mut StdRng,
                          conv: &mut Option<ConvState>,
                          probe: &mut P|
         -> bool {
            let Some(record) = workload.next() else {
                return false;
            };
            if let Some(c) = conv.as_mut() {
                *c.counts.entry(record.object.raw()).or_insert(0) += 1;
            }
            if P::ENABLED {
                probe.emit(SimEvent::RequestInjected {
                    client: record.client.raw(),
                    seq: record.seq,
                    object: record.object.raw(),
                });
            }
            let proxy = match assignment {
                ClientAssignment::Sticky => ProxyId::new(record.client.raw() % n),
                ClientAssignment::RandomPerRequest => ProxyId::new(assign_rng.gen_range(0..n)),
            };
            let id = RequestId::new(record.client, record.seq);
            flows.insert(
                id,
                FlowState {
                    start: now,
                    hops: 0,
                    size: record.size,
                    phase: record.phase,
                },
            );
            let request = Request::new(id, record.object, record.client);
            let from = NodeId::Client(record.client);
            let to = NodeId::Proxy(proxy);
            let at = now + latency(from, to);
            push(
                queue,
                event_seq,
                at,
                EventKind::Deliver {
                    from,
                    to,
                    message: Message::Request(request),
                },
            );
            true
        };

        // Prime the pump.
        match injection {
            InjectionMode::Sequential => {
                inject(
                    &mut queue,
                    &mut event_seq,
                    now,
                    &mut flows,
                    &mut assign_rng,
                    &mut conv,
                    probe,
                );
            }
            InjectionMode::OpenLoop { .. } => {
                push(&mut queue, &mut event_seq, SimTime::ZERO, EventKind::Inject);
            }
        }

        while let Some((at, _seq, kind)) = queue.pop() {
            now = SimTime::from_micros(at);
            if P::ENABLED {
                probe.tick(at);
            }
            events_processed += 1;
            match kind {
                EventKind::Inject => {
                    if inject(
                        &mut queue,
                        &mut event_seq,
                        now,
                        &mut flows,
                        &mut assign_rng,
                        &mut conv,
                        probe,
                    ) {
                        if let InjectionMode::OpenLoop { interval } = injection {
                            push(
                                &mut queue,
                                &mut event_seq,
                                now + interval,
                                EventKind::Inject,
                            );
                        }
                    }
                }
                EventKind::Deliver { from, to, message } => {
                    messages_delivered += 1;
                    if let Some(log) = trace.as_mut() {
                        log.record(DeliveryRecord {
                            at: now,
                            request: message.request_id(),
                            from,
                            to,
                            is_request: matches!(message, Message::Request(_)),
                        });
                    }
                    // Byte accounting: a reply's body travels once per
                    // transfer; attribute it to its producer.
                    if from != to {
                        if let Message::Reply(rep) = &message {
                            if from == NodeId::Origin {
                                bytes_from_origin += u64::from(rep.size);
                            } else if rep.served_from.is_hit() && matches!(to, NodeId::Client(_)) {
                                bytes_from_caches += u64::from(rep.size);
                            }
                        }
                    }
                    // A hop is any message transfer between distinct nodes
                    // (client–proxy, proxy–proxy, proxy–server), counted
                    // for the flow it belongs to.
                    if from != to {
                        if let Some(flow) = flows.get_mut(&message.request_id()) {
                            flow.hops += 1;
                        }
                    }

                    // Fault injection: duplicate this delivery.
                    if faults.duplicate_prob > 0.0 && fault_rng.gen_bool(faults.duplicate_prob) {
                        duplicates_injected += 1;
                        push(
                            &mut queue,
                            &mut event_seq,
                            now + faults.duplicate_jitter,
                            EventKind::Deliver { from, to, message },
                        );
                    }

                    debug_assert!(sink.is_empty(), "sink drained after every delivery");
                    match to {
                        NodeId::Proxy(pid) => {
                            // Proxy ids are dense 0..n (checked in new()).
                            let agent = &mut self.agents[pid.raw() as usize];
                            match message {
                                Message::Request(req) => {
                                    agent.on_request(req, &mut agent_rng, probe, &mut sink);
                                }
                                Message::Reply(rep) => agent.on_reply(rep, probe, &mut sink),
                            }
                        }
                        NodeId::Origin => match message {
                            Message::Request(req) => {
                                // The origin always resolves; reply to the
                                // proxy that sent the request. A request
                                // whose flow already completed gets the
                                // nominal size — and is counted, not
                                // silently patched over.
                                let size = match flows.get(&req.id) {
                                    Some(f) => f.size,
                                    None => {
                                        orphan_origin_requests += 1;
                                        adc_core::DEFAULT_OBJECT_SIZE
                                    }
                                };
                                let reply = Reply::from_origin(&req, size);
                                sink.send(req.sender, reply);
                            }
                            Message::Reply(_) => {
                                debug_assert!(false, "origin never receives replies");
                            }
                        },
                        NodeId::Client(_) => {
                            match message {
                                Message::Reply(rep) => {
                                    if let Some(flow) = flows.remove(&rep.id) {
                                        completed += 1;
                                        let hit = rep.served_from.is_hit();
                                        if hit {
                                            hits += 1;
                                        }
                                        if P::ENABLED {
                                            probe.emit(SimEvent::RequestCompleted {
                                                client: rep.id.client.raw(),
                                                seq: rep.id.seq,
                                                object: rep.object.raw(),
                                                hit,
                                                hops: flow.hops,
                                                start_us: flow.start.as_micros(),
                                            });
                                        }
                                        let phase_idx = match flow.phase {
                                            Phase::Fill => 0,
                                            Phase::RequestI => 1,
                                            Phase::RequestII => 2,
                                        };
                                        // phase_idx is 0..3 by construction.
                                        phases[phase_idx].requests += 1;
                                        phases[phase_idx].hits += u64::from(hit);
                                        let hops_f = flow.hops as f64; // u32: exact in f64
                                        let completed_f = completed as f64; // < 2^53: exact
                                        let latency_us = (now - flow.start).as_micros() as f64; // < 2^53: exact
                                        hops_summary.push(hops_f);
                                        latency_summary.push(latency_us);
                                        latency_p50.push(latency_us);
                                        latency_p99.push(latency_us);
                                        hit_window.push_bool(hit);
                                        hops_window.push(hops_f);
                                        if let Some(v) = hit_window.value() {
                                            hit_sampler.observe(completed_f, v);
                                        }
                                        if let Some(v) = hops_window.value() {
                                            hops_sampler.observe(completed_f, v);
                                        }
                                        if let Some(occupancy) = occupancy.as_mut() {
                                            for (agent, sampler) in
                                                self.agents.iter().zip(occupancy.iter_mut())
                                            {
                                                sampler.observe(
                                                    completed_f,
                                                    // cache sizes ≪ 2^53: exact
                                                    agent.cached_objects() as f64,
                                                );
                                            }
                                        }
                                        // Convergence: snapshot every
                                        // agent's owner hint for the hot
                                        // set on the sampling schedule.
                                        if let Some(c) = conv.as_mut() {
                                            if completed.is_multiple_of(c.cfg.sample_every) {
                                                let mut hot: Vec<(u64, u64)> = c
                                                    .counts
                                                    .iter()
                                                    .map(|(&o, &n)| (o, n))
                                                    .collect();
                                                hot.sort_unstable_by(|a, b| {
                                                    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
                                                });
                                                hot.truncate(c.cfg.top_k);
                                                let snapshot: Vec<(u64, Vec<Option<u32>>)> = hot
                                                    .iter()
                                                    .map(|&(object, _)| {
                                                        let hints = self
                                                            .agents
                                                            .iter()
                                                            .map(|a| {
                                                                a.owner_hint(ObjectId::new(object))
                                                                    .map(|p| p.raw())
                                                            })
                                                            .collect();
                                                        (object, hints)
                                                    })
                                                    .collect();
                                                c.tracker.sample(completed_f, &snapshot);
                                            }
                                        }
                                        // Scheduled proxy restarts fire on
                                        // completion boundaries.
                                        while churn_idx < churn.len()
                                            && churn[churn_idx].after_completed <= completed
                                        {
                                            // churn_idx bounds-checked above.
                                            let p = churn[churn_idx].proxy;
                                            if let Some(agent) =
                                                // u32 → usize widens on 64-bit
                                                self.agents.get_mut(p.raw() as usize)
                                            {
                                                agent.reset();
                                                proxies_reset += 1;
                                            }
                                            churn_idx += 1;
                                        }
                                        if injection == InjectionMode::Sequential {
                                            inject(
                                                &mut queue,
                                                &mut event_seq,
                                                now,
                                                &mut flows,
                                                &mut assign_rng,
                                                &mut conv,
                                                probe,
                                            );
                                        }
                                    } else {
                                        client_orphans += 1;
                                    }
                                }
                                Message::Request(_) => {
                                    debug_assert!(false, "clients never receive requests");
                                }
                            }
                        }
                    }

                    for action in sink.drain() {
                        let Action::Send {
                            to: dest,
                            mut message,
                        } = action;
                        // Agents only know a nominal object size; the
                        // workload's size lives in the flow state.
                        // Normalize replies so byte accounting and the
                        // client-visible size are the workload's.
                        if let Message::Reply(rep) = &mut message {
                            if let Some(flow) = flows.get(&rep.id) {
                                rep.size = flow.size;
                            }
                        }
                        let mut at = now + latency(to, dest);
                        if dest == NodeId::Origin {
                            // Account for the origin's per-request service
                            // time up front, so its reply goes out at
                            // arrival + service + wire time.
                            at += base_latency.origin_service;
                        }
                        push(
                            &mut queue,
                            &mut event_seq,
                            at,
                            EventKind::Deliver {
                                from: to,
                                to: dest,
                                message,
                            },
                        );
                    }
                }
            }
        }

        let report = SimReport {
            completed,
            hits,
            phases,
            hops: hops_summary,
            latency_us: latency_summary,
            latency_p50_us: latency_p50.value().unwrap_or(0.0),
            latency_p99_us: latency_p99.value().unwrap_or(0.0),
            hit_series: hit_sampler.into_series(),
            hops_series: hops_sampler.into_series(),
            per_proxy: self.agents.iter().map(|a| *a.stats()).collect(),
            final_cache_sizes: self.agents.iter().map(|a| a.cached_objects()).collect(),
            occupancy_series: occupancy
                .map(|samplers| {
                    samplers
                        .into_iter()
                        .enumerate()
                        .map(|(i, sampler)| {
                            let mut series = sampler.into_series();
                            series.name = format!("proxy{i}");
                            series
                        })
                        .collect()
                })
                .unwrap_or_default(),
            messages_delivered,
            events_processed,
            peak_flows: flows.peak(),
            duplicates_injected,
            client_orphans,
            orphan_origin_requests,
            proxies_reset,
            bytes_from_origin,
            bytes_from_caches,
            trace,
            convergence: conv.map(|c| c.tracker.into_report()),
            metrics: None,
            shard_exec: None,
            spans: None,
            shard_profile: None,
            wall_time: wall_start.elapsed(),
            cpu_time: crate::cputime::thread_cpu_now().saturating_sub(cpu_start),
        };
        (report, self.agents)
    }

    /// Runs the workload to completion.
    pub fn run(self, workload: impl IntoIterator<Item = RequestRecord>) -> SimReport {
        self.run_with_agents(workload).0
    }

    /// Runs the workload to completion with `probe` attached; see
    /// [`run_observed_with_agents`](Simulation::run_observed_with_agents).
    pub fn run_observed<P: Probe>(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
        probe: &mut P,
    ) -> SimReport {
        self.run_observed_with_agents(workload, probe).0
    }

    /// Runs the workload with a [`MetricsProbe`](adc_obs::MetricsProbe)
    /// attached and the resulting per-proxy families embedded in
    /// [`SimReport::metrics`]. The probe is a pure event consumer — it
    /// never touches the RNG streams or event order, so results are
    /// identical to an unobserved run of the same seed.
    pub fn run_with_metrics(self, workload: impl IntoIterator<Item = RequestRecord>) -> SimReport {
        let mut probe = adc_obs::MetricsProbe::new();
        let (mut report, _) = self.run_observed_with_agents(workload, &mut probe);
        report.metrics = Some(probe.report());
        report
    }

    /// Runs the workload with a [`SpanProbe`](adc_obs::SpanProbe)
    /// attached and the resulting causal latency breakdown embedded in
    /// [`SimReport::spans`], keeping the `top_k` slowest flows in the
    /// digest. Like every probe, the recorder is a pure event consumer:
    /// the deterministic report is identical to an unobserved run.
    pub fn run_with_spans(
        self,
        workload: impl IntoIterator<Item = RequestRecord>,
        top_k: usize,
    ) -> SimReport {
        let mut probe = adc_obs::SpanProbe::with_top_k(top_k);
        let (mut report, _) = self.run_observed_with_agents(workload, &mut probe);
        report.spans = Some(probe.into_report());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultPlan;
    use adc_baselines::CarpProxy;
    use adc_core::{AdcConfig, AdcProxy, ClientId, ObjectId};
    use adc_workload::{Phase, PolygraphConfig, StationaryZipf};

    fn adc_agents(n: u32, config: AdcConfig) -> Vec<AdcProxy> {
        (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect()
    }

    fn carp_agents(n: u32, cache: usize) -> Vec<CarpProxy> {
        (0..n)
            .map(|i| CarpProxy::new(ProxyId::new(i), n, cache))
            .collect()
    }

    /// A workload of hand-written records.
    fn records(objects: &[u64]) -> Vec<RequestRecord> {
        objects
            .iter()
            .enumerate()
            .map(|(i, &o)| RequestRecord {
                seq: i as u64,
                client: ClientId::new(0),
                object: ObjectId::new(o),
                size: 100,
                phase: Phase::RequestI,
            })
            .collect()
    }

    #[test]
    fn single_adc_proxy_learns_to_hit() {
        let config = AdcConfig::builder()
            .single_capacity(16)
            .multiple_capacity(16)
            .cache_capacity(8)
            .max_hops(8)
            .build();
        let sim = Simulation::new(adc_agents(1, config), SimConfig::fast());
        let report = sim.run(records(&[1, 1, 1, 1, 1, 1]));
        assert_eq!(report.completed, 6);
        assert!(report.hits >= 2, "should hit after learning: {report:?}");
        // The last requests must be local hits with exactly 2 hops.
        assert!(report.hops.min().unwrap() >= 2.0);
    }

    #[test]
    fn carp_hop_counts_match_hand_calculation() {
        // One proxy: miss = C→P, P→O, O→P, P→C = 4 hops; hit = 2 hops.
        let sim = Simulation::new(carp_agents(1, 8), SimConfig::fast());
        let report = sim.run(records(&[1, 1]));
        assert_eq!(report.completed, 2);
        assert_eq!(report.hits, 1);
        assert_eq!(report.hops.min(), Some(2.0));
        assert_eq!(report.hops.max(), Some(4.0));
    }

    #[test]
    fn carp_multi_proxy_routes_to_owner() {
        let sim = Simulation::new(carp_agents(4, 64), SimConfig::fast());
        // Same object requested many times by different clients lands on
        // the same owner; all but the first are hits.
        let recs: Vec<RequestRecord> = (0..20)
            .map(|i| RequestRecord {
                seq: i,
                client: ClientId::new(i as u32 % 7),
                object: ObjectId::new(42),
                size: 10,
                phase: Phase::RequestI,
            })
            .collect();
        let report = sim.run(recs);
        assert_eq!(report.completed, 20);
        assert_eq!(report.hits, 19);
    }

    #[test]
    fn run_with_metrics_matches_unobserved_run_and_reconciles() {
        let build = || {
            let config = AdcConfig::builder()
                .single_capacity(64)
                .multiple_capacity(64)
                .cache_capacity(32)
                .max_hops(8)
                .build();
            Simulation::new(adc_agents(3, config), SimConfig::fast())
        };
        let workload = || StationaryZipf::new(200, 0.9, 8, 11).take(3_000);
        let plain = build().run(workload());
        let observed = build().run_with_metrics(workload());
        // The probe is a pure consumer: same seed, same results.
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.hits, observed.hits);
        assert_eq!(plain.messages_delivered, observed.messages_delivered);
        let metrics = observed.metrics.as_ref().expect("metrics embedded");
        let snap = &metrics.snapshot;
        // Registry counters reconcile with the report totals.
        let total = |name: &str| -> u64 {
            snap.counters
                .iter()
                .filter(|(m, _, _)| m == name)
                .map(|&(_, _, v)| v)
                .sum()
        };
        assert_eq!(total(adc_obs::metrics::REQUESTS_COMPLETED), plain.completed);
        assert_eq!(total(adc_obs::metrics::REQUEST_HITS), plain.hits);
        assert_eq!(total(adc_obs::metrics::LOCAL_HITS), plain.hits);
        // Per-proxy summaries cover each agent that served something,
        // and the exposition text round-trips the format checker.
        assert!(!metrics.per_proxy.is_empty());
        adc_metrics::validate_prometheus(&snap.to_prometheus()).expect("valid exposition");
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let config = AdcConfig::builder()
                .single_capacity(64)
                .multiple_capacity(64)
                .cache_capacity(32)
                .max_hops(8)
                .build();
            let sim = Simulation::new(adc_agents(3, config), SimConfig::fast());
            sim.run(StationaryZipf::new(200, 0.9, 8, 11).take(3_000))
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.hit_series, b.hit_series);
        assert_eq!(a.hops.mean(), b.hops.mean());
    }

    #[test]
    fn open_loop_completes_every_request() {
        let mut config = SimConfig::fast();
        config.injection = InjectionMode::OpenLoop {
            interval: SimTime::from_micros(100),
        };
        config.latency = crate::network::LatencyModel::default();
        let adc = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(8)
            .build();
        let sim = Simulation::new(adc_agents(3, adc), config);
        let report = sim.run(StationaryZipf::new(100, 0.9, 4, 5).take(500));
        assert_eq!(report.completed, 500);
        // Open loop at 100us with 40ms origin RTTs must overlap flows, so
        // total simulated latency must exceed the injection span.
        assert!(report.latency_us.max().unwrap() > 40_000.0);
    }

    #[test]
    fn duplicate_faults_do_not_lose_requests() {
        let mut config = SimConfig::fast();
        config.faults = FaultPlan {
            duplicate_prob: 0.2,
            duplicate_jitter: SimTime::from_micros(7),
        };
        let adc = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(6)
            .build();
        let sim = Simulation::new(adc_agents(3, adc), config);
        let report = sim.run(StationaryZipf::new(100, 0.9, 4, 5).take(2_000));
        assert_eq!(report.completed, 2_000);
        assert!(report.duplicates_injected > 100);
        // Duplicated replies to clients show up as orphans, and orphaned
        // replies at proxies are counted, not crashed on.
        let orphans: u64 = report.cluster_stats().replies_orphaned;
        assert!(orphans + report.client_orphans > 0);
    }

    #[test]
    fn sticky_vs_random_assignment_changes_first_hop_distribution() {
        let recs: Vec<RequestRecord> = (0..300)
            .map(|i| RequestRecord {
                seq: i,
                client: ClientId::new(0), // one client only
                object: ObjectId::new(i),
                size: 10,
                phase: Phase::Fill,
            })
            .collect();
        let carp = || carp_agents(3, 64);
        let sticky = Simulation::new(carp(), SimConfig::fast()).run(recs.clone());
        // Sticky: client 0 always hits proxy 0 first.
        assert!(sticky.per_proxy[0].requests_received >= 300);

        let mut config = SimConfig::fast();
        config.assignment = ClientAssignment::RandomPerRequest;
        let random = Simulation::new(carp(), config).run(recs);
        assert!(random.per_proxy[1].requests_received > 30);
        assert!(random.per_proxy[2].requests_received > 30);
    }

    #[test]
    fn phase_accounting_separates_fill_and_request_phases() {
        let config = AdcConfig::builder()
            .single_capacity(256)
            .multiple_capacity(256)
            .cache_capacity(128)
            .max_hops(8)
            .build();
        let workload = PolygraphConfig {
            fill_requests: 300,
            phase_requests: 600,
            hot_set: 50,
            recurrence: 0.8,
            fill_recurrence: 0.0,
            zipf_alpha: 0.8,
            clients: 10,
            seed: 3,
            exact_replay: true,
            size_model: adc_workload::SizeModel::default(),
        };
        let sim = Simulation::new(adc_agents(3, config), SimConfig::fast());
        let report = sim.run(workload.build());
        assert_eq!(report.phase(Phase::Fill).requests, 300);
        assert_eq!(report.phase(Phase::RequestI).requests, 600);
        assert_eq!(report.phase(Phase::RequestII).requests, 600);
        // Fill phase has no repeats, so (almost) no hits.
        assert_eq!(report.phase(Phase::Fill).hits, 0);
        // The replayed phase must hit more than the learning phase.
        assert!(
            report.phase(Phase::RequestII).hit_rate() > report.phase(Phase::RequestI).hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "dense 0..n")]
    fn non_dense_agent_ids_rejected() {
        let agents = vec![AdcProxy::with_peers(
            ProxyId::new(1),
            vec![ProxyId::new(1)],
            AdcConfig::default(),
        )];
        let _ = Simulation::new(agents, SimConfig::fast());
    }

    #[test]
    #[should_panic(expected = "at least one proxy")]
    fn empty_agent_set_rejected() {
        let _ = Simulation::new(Vec::<AdcProxy>::new(), SimConfig::fast());
    }
}

#[cfg(test)]
mod observed_tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy, CountingProbe, EventLog};
    use adc_obs::EventKind as ObsEventKind;
    use adc_workload::StationaryZipf;

    fn adc_agents(n: u32) -> Vec<AdcProxy> {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(8)
            .build();
        (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect()
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let workload = || StationaryZipf::new(120, 0.9, 6, 7).take(2_500);
        let plain = Simulation::new(adc_agents(3), SimConfig::fast()).run(workload());
        let mut probe = CountingProbe::new();
        let observed =
            Simulation::new(adc_agents(3), SimConfig::fast()).run_observed(workload(), &mut probe);
        // Attaching a probe must not perturb the simulation itself.
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.hits, observed.hits);
        assert_eq!(plain.messages_delivered, observed.messages_delivered);
        assert_eq!(plain.hit_series, observed.hit_series);
        // Runner-level events account for every request exactly once.
        assert_eq!(probe.count(ObsEventKind::RequestInjected), 2_500);
        assert_eq!(
            probe.count(ObsEventKind::RequestCompleted),
            observed.completed
        );
        assert!(probe.total() > 2 * 2_500, "agent events missing");
    }

    #[test]
    fn event_log_timestamps_are_monotone_virtual_time() {
        let mut log = EventLog::new();
        let report = Simulation::new(adc_agents(2), SimConfig::fast())
            .run_observed(StationaryZipf::new(40, 0.9, 4, 3).take(400), &mut log);
        assert_eq!(report.completed, 400);
        assert!(!log.is_empty());
        assert_eq!(log.dropped(), 0);
        let times: Vec<u64> = log.events().iter().map(|&(t, _)| t).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "virtual time ran backwards"
        );
    }

    #[test]
    fn convergence_sampling_reports_rising_agreement() {
        let mut config = SimConfig::fast();
        config.convergence = Some(ConvergenceConfig {
            sample_every: 500,
            top_k: 32,
        });
        let report = Simulation::new(adc_agents(3), config)
            .run(StationaryZipf::new(100, 0.9, 6, 7).take(6_000));
        let conv = report.convergence.as_ref().expect("sampling was on");
        assert_eq!(conv.samples, (6_000 / 500) as usize);
        assert_eq!(conv.agreement.len(), conv.samples);
        // Backwarding drives the cluster toward agreement: the late
        // samples must agree more than the early ones on average.
        let early = conv.agreement.points[..conv.samples / 2]
            .iter()
            .map(|&(_, y)| y)
            .sum::<f64>()
            / (conv.samples / 2) as f64;
        let late = conv.agreement.points[conv.samples / 2..]
            .iter()
            .map(|&(_, y)| y)
            .sum::<f64>()
            / (conv.samples - conv.samples / 2) as f64;
        assert!(
            late >= early,
            "agreement should trend upward: early={early} late={late}"
        );
        assert!(conv.final_agreement().unwrap() > 0.5);
        // Convergence sampling alone must not disturb the run either.
        let plain = Simulation::new(adc_agents(3), SimConfig::fast())
            .run(StationaryZipf::new(100, 0.9, 6, 7).take(6_000));
        assert_eq!(plain.hits, report.hits);
        assert_eq!(plain.messages_delivered, report.messages_delivered);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::config::ChurnEvent;
    use adc_core::{AdcConfig, AdcProxy};
    use adc_workload::StationaryZipf;

    #[test]
    fn churn_resets_fire_and_system_recovers() {
        let config = AdcConfig::builder()
            .single_capacity(128)
            .multiple_capacity(128)
            .cache_capacity(64)
            .max_hops(8)
            .build();
        let agents: Vec<AdcProxy> = (0..3)
            .map(|i| AdcProxy::new(ProxyId::new(i), 3, config.clone()))
            .collect();
        let mut sim_config = SimConfig::fast();
        sim_config.churn = vec![
            ChurnEvent {
                after_completed: 2_000,
                proxy: ProxyId::new(0),
            },
            ChurnEvent {
                after_completed: 2_500,
                proxy: ProxyId::new(1),
            },
        ];
        let sim = Simulation::new(agents, sim_config);
        let (report, agents) = sim.run_with_agents(StationaryZipf::new(80, 0.9, 8, 5).take(6_000));
        assert_eq!(report.proxies_reset, 2);
        assert_eq!(report.completed, 6_000);
        // After the restart the proxies relearn and keep hitting.
        let late = report
            .hit_series
            .tail_mean_y(0.2)
            .expect("series has points");
        assert!(late > 0.5, "system failed to recover after churn: {late}");
        for agent in &agents {
            agent.tables().assert_invariants();
        }
    }

    #[test]
    fn churn_against_workload_end_is_a_no_op() {
        let agents: Vec<AdcProxy> = vec![AdcProxy::new(
            ProxyId::new(0),
            1,
            AdcConfig::builder()
                .single_capacity(16)
                .multiple_capacity(16)
                .cache_capacity(8)
                .build(),
        )];
        let mut sim_config = SimConfig::fast();
        sim_config.churn = vec![ChurnEvent {
            after_completed: 1_000_000, // never reached
            proxy: ProxyId::new(0),
        }];
        let sim = Simulation::new(agents, sim_config);
        let report = sim.run(StationaryZipf::new(10, 0.9, 2, 1).take(100));
        assert_eq!(report.proxies_reset, 0);
        assert_eq!(report.completed, 100);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy, ClientId, ObjectId};
    use adc_workload::{Phase, StationaryZipf};

    fn adc(n: u32) -> Vec<AdcProxy> {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(8)
            .build();
        (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect()
    }

    #[test]
    fn adc_backwarding_retraces_every_forward_path() {
        let mut config = SimConfig::fast();
        config.trace_capacity = 100_000;
        let sim = Simulation::new(adc(4), config);
        let records: Vec<RequestRecord> = StationaryZipf::new(60, 0.9, 6, 3).take(1_500).collect();
        let ids: Vec<RequestId> = records
            .iter()
            .map(|r| RequestId::new(r.client, r.seq))
            .collect();
        let report = sim.run(records);
        let log = report.trace.as_ref().expect("tracing was on");
        assert_eq!(log.dropped(), 0, "log capacity too small for the run");
        for id in ids {
            assert!(
                log.backwarding_retraces_forwarding(id),
                "flow {id} did not retrace: {:?}",
                log.flow(id)
            );
        }
    }

    #[test]
    fn byte_accounting_sums_to_served_volume() {
        let mut config = SimConfig::fast();
        config.trace_capacity = 0;
        let records: Vec<RequestRecord> = (0..200)
            .map(|i| RequestRecord {
                seq: i,
                client: ClientId::new(0),
                object: ObjectId::new(i % 10),
                size: 100,
                phase: Phase::RequestI,
            })
            .collect();
        let sim = Simulation::new(adc(2), config);
        let report = sim.run(records);
        assert!(report.trace.is_none());
        // Every completed request's body came from exactly one producer.
        assert_eq!(
            report.bytes_from_origin + report.bytes_from_caches,
            report.completed * 100
        );
        assert!(report.byte_hit_rate() > 0.0);
        // Byte hit rate equals object hit rate here (uniform sizes).
        assert!((report.byte_hit_rate() - report.hit_rate()).abs() < 1e-9);
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy};
    use adc_workload::StationaryZipf;

    #[test]
    fn occupancy_series_tracks_cache_fill() {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(16)
            .max_hops(8)
            .build();
        let agents: Vec<AdcProxy> = (0..2)
            .map(|i| AdcProxy::new(ProxyId::new(i), 2, config.clone()))
            .collect();
        let sim = Simulation::new(agents, SimConfig::fast());
        let report = sim.run(StationaryZipf::new(40, 0.9, 4, 3).take(3_000));
        assert_eq!(report.occupancy_series.len(), 2);
        for (i, series) in report.occupancy_series.iter().enumerate() {
            assert!(!series.is_empty(), "proxy {i} series empty");
            // Occupancy is monotone here (no displacement pressure) and
            // bounded by the cache capacity.
            let ys: Vec<f64> = series.points.iter().map(|&(_, y)| y).collect();
            assert!(ys.iter().all(|&y| y <= 16.0));
            assert!(ys.windows(2).all(|w| w[0] <= w[1] + 1e-9));
            // Final sample agrees with the final cache size.
            assert_eq!(*ys.last().unwrap() as usize, report.final_cache_sizes[i]);
        }
    }
}

#[cfg(test)]
mod matrix_tests {
    use super::*;
    use crate::network::LatencyModel;
    use adc_core::{AdcConfig, AdcProxy};
    use adc_workload::StationaryZipf;

    fn agents(n: u32) -> Vec<AdcProxy> {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(32)
            .max_hops(8)
            .build();
        (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect()
    }

    /// Two 2-proxy LAN islands joined by a slow WAN link.
    fn wan_matrix(lan: SimTime, wan: SimTime) -> Vec<Vec<SimTime>> {
        let island = |p: usize| p / 2;
        (0..4)
            .map(|a| {
                (0..4)
                    .map(|b| if island(a) == island(b) { lan } else { wan })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matrix_changes_latency_but_not_hits_or_hops() {
        let run = |matrix: Option<Vec<Vec<SimTime>>>| {
            let config = SimConfig {
                latency: LatencyModel::default(),
                hit_window: 500,
                sample_every: 500,
                proxy_latency_matrix: matrix,
                ..SimConfig::default()
            };
            Simulation::new(agents(4), config).run(StationaryZipf::new(50, 0.9, 8, 9).take(2_000))
        };
        let uniform = run(None);
        let wan = run(Some(wan_matrix(
            SimTime::from_millis(1),
            SimTime::from_millis(80),
        )));
        // Hits and hops are topology-independent...
        assert_eq!(uniform.hits, wan.hits);
        assert_eq!(uniform.hops.mean(), wan.hops.mean());
        // ...but the WAN topology costs real time.
        assert!(
            wan.latency_us.mean().unwrap() > uniform.latency_us.mean().unwrap(),
            "WAN {:?} should exceed uniform {:?}",
            wan.latency_us.mean(),
            uniform.latency_us.mean()
        );
        assert!(wan.latency_p99_us >= wan.latency_p50_us);
    }

    #[test]
    #[should_panic(expected = "must match the proxy count")]
    fn wrong_sized_matrix_rejected() {
        let mut config = SimConfig::fast();
        config.proxy_latency_matrix = Some(vec![vec![SimTime::ZERO; 2]; 2]);
        let _ = Simulation::new(agents(3), config);
    }

    #[test]
    fn non_square_matrix_rejected_by_validation() {
        let mut config = SimConfig::fast();
        config.proxy_latency_matrix = Some(vec![vec![SimTime::ZERO; 3], vec![SimTime::ZERO; 2]]);
        assert!(config.validate().is_err());
    }

    #[test]
    fn run_with_spans_reconciles_and_preserves_results() {
        let workload = || StationaryZipf::new(80, 0.9, 4, 11).take(2_000);
        let config = || SimConfig {
            injection: InjectionMode::OpenLoop {
                interval: SimTime::from_micros(80),
            },
            ..SimConfig::fast()
        };
        let plain = Simulation::new(agents(4), config()).run(workload());
        let observed = Simulation::new(agents(4), config()).run_with_spans(workload(), 5);
        // The span recorder is a pure consumer: deterministic bytes match.
        assert_eq!(
            plain.to_deterministic_json(),
            observed.to_deterministic_json()
        );
        let spans = observed.spans.expect("run_with_spans populates spans");
        assert_eq!(spans.flows, observed.completed);
        assert_eq!(spans.sum_check_failures, 0, "{spans:?}");
        assert_eq!(spans.attributed_us, spans.total_us, "{spans:?}");
        assert_eq!(spans.slowest.len(), 5);
        // Digest is sorted slowest-first and bounded by the total.
        assert!(spans
            .slowest
            .windows(2)
            .all(|w| w[0].total_us >= w[1].total_us));
    }
}
