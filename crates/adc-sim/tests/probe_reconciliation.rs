//! Property test: over random micro-runs, the typed [`SimEvent`] stream
//! exactly reconciles with the [`ProxyStats`] counters the agents keep.
//! Every emission site in `adc-core` mirrors a stats increment, so a
//! divergence here means an event was dropped, double-emitted, or gated
//! differently from its counter — the contract the exporters rely on.
//!
//! [`SimEvent`]: adc_core::SimEvent
//! [`ProxyStats`]: adc_core::ProxyStats

use adc_core::{AdcConfig, AdcProxy, CountingProbe, EventKind, ProxyId};
use adc_sim::{FaultPlan, SimConfig, SimTime, Simulation};
use adc_workload::StationaryZipf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn event_counts_reconcile_with_proxy_stats(
        n in 1u32..5,
        objects in 10usize..200,
        requests in 200usize..1200,
        seed in 0u64..1_000,
        // Duplicate faults exercise the orphaned-reply path, so the
        // ReplyOrphaned <-> replies_orphaned pairing is covered too.
        dup in prop_oneof![Just(0.0f64), Just(0.15f64)],
    ) {
        let config = AdcConfig::builder()
            .single_capacity(64)
            .multiple_capacity(64)
            .cache_capacity(16)
            .max_hops(6)
            .build();
        let agents: Vec<AdcProxy> = (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect();
        let mut sim_config = SimConfig::fast();
        sim_config.faults = FaultPlan {
            duplicate_prob: dup,
            duplicate_jitter: SimTime::from_micros(3),
        };
        sim_config.seed ^= seed;

        let mut probe = CountingProbe::new();
        let report = Simulation::new(agents, sim_config).run_observed(
            StationaryZipf::new(objects, 0.9, 4, seed).take(requests),
            &mut probe,
        );
        let stats = report.cluster_stats();

        // Agent-side events mirror the per-proxy counters one-for-one.
        prop_assert_eq!(probe.count(EventKind::ForwardLearned), stats.forwards_learned);
        prop_assert_eq!(probe.count(EventKind::ForwardRandom), stats.forwards_random);
        prop_assert_eq!(probe.count(EventKind::LoopDetected), stats.origin_loops);
        prop_assert_eq!(probe.count(EventKind::HopLimitHit), stats.origin_max_hops);
        prop_assert_eq!(probe.count(EventKind::OriginThisMiss), stats.origin_this_miss);
        prop_assert_eq!(probe.count(EventKind::LocalHit), stats.local_hits);
        prop_assert_eq!(probe.count(EventKind::ReplyOrphaned), stats.replies_orphaned);
        prop_assert_eq!(probe.count(EventKind::CacheInsert), stats.cache_insertions);
        prop_assert_eq!(probe.count(EventKind::CacheEvict), stats.cache_evictions);

        // Runner-side flow events account for every request exactly once.
        prop_assert_eq!(probe.count(EventKind::RequestInjected), requests as u64);
        prop_assert_eq!(probe.count(EventKind::RequestCompleted), report.completed);
        prop_assert_eq!(report.completed, requests as u64);
    }
}
