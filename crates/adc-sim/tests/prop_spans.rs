//! Property tests for the flow-span recorder's exactness contract.
//!
//! The recorder's attribution telescopes: a flow's labelled segment
//! deltas are the gaps between consecutive recorder touches, from
//! injection to completion, so their sum must equal the flow's
//! end-to-end resolution latency *exactly* — for every flow, in every
//! injection mode, with fault injection duplicating deliveries (orphan
//! replies, stray post-completion proxy events) and random forwarding
//! producing loops and hop-limit give-ups. The recorder self-checks the
//! per-flow equality and counts violations in
//! [`SpanReport::sum_check_failures`]; these tests pin that counter to
//! zero and reconcile the aggregate tables against it.
//!
//! [`SpanReport::sum_check_failures`]: adc_sim::SpanReport

use adc_core::{AdcConfig, AdcProxy, ProxyId};
use adc_sim::{FaultPlan, InjectionMode, SimConfig, SimTime, Simulation};
use adc_workload::StationaryZipf;
use proptest::prelude::*;

fn sim_agents(proxies: u32) -> Vec<AdcProxy> {
    // Tight hop limit and small caches keep loops, hop-limit give-ups
    // and evictions frequent at test scale.
    let config = AdcConfig::builder()
        .single_capacity(48)
        .multiple_capacity(48)
        .cache_capacity(16)
        .max_hops(4)
        .build();
    (0..proxies)
        .map(|i| AdcProxy::new(ProxyId::new(i), proxies, config.clone()))
        .collect()
}

/// Runs the workload with the span recorder attached and checks every
/// reconciliation invariant the report promises.
fn check_spans(
    config: SimConfig,
    proxies: u32,
    requests: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let workload = StationaryZipf::new(60, 0.8, 4, seed).take(requests);
    let report = Simulation::new(sim_agents(proxies), config).run_with_spans(workload, 8);
    let spans = report
        .spans
        .as_ref()
        .expect("run_with_spans populates spans");

    // The heart of the contract: no flow's segment sum ever disagreed
    // with its end-to-end latency.
    prop_assert_eq!(spans.sum_check_failures, 0, "{:?}", spans);

    // Every injected flow resolves (duplicates never kill a flow), so
    // the recorder closes exactly the completions the report counts and
    // attributes every microsecond of them.
    prop_assert_eq!(spans.flows, report.completed);
    prop_assert_eq!(spans.flows_unclosed, 0);
    prop_assert_eq!(spans.attributed_us, spans.total_us);

    // The per-segment table is a partition of the attributed time.
    let seg_total: u64 = spans.segments.iter().map(|s| s.total_us).sum();
    prop_assert_eq!(seg_total, spans.attributed_us);
    // The per-proxy table is a *sub*-partition: a flow whose proxy
    // events all attached to an older same-object flow completes with
    // no attribution target, so its time stays proxy-less (the segment
    // table still carries it).
    let proxy_total: u64 = spans.per_proxy.iter().map(|p| p.total_us()).sum();
    prop_assert!(proxy_total <= spans.attributed_us);

    // The digest is sorted slowest-first and each entry's own split
    // telescopes to its total.
    prop_assert!(spans
        .slowest
        .windows(2)
        .all(|w| w[0].total_us >= w[1].total_us));
    for slow in &spans.slowest {
        let sum: u64 = slow.seg_us.iter().sum();
        prop_assert_eq!(
            sum,
            slow.total_us,
            "digest entry split diverged: {:?}",
            slow
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential injection, faults on: one flow in flight at a time,
    /// but duplicated deliveries still produce orphan replies and stray
    /// events after completion.
    #[test]
    fn sequential_spans_sum_exactly_under_faults(
        proxies in 1u32..6,
        requests in 50usize..250,
        seed in any::<u64>(),
        dup_milli in 0u32..300,
        jitter_us in 0u64..50,
    ) {
        let config = SimConfig {
            faults: FaultPlan {
                duplicate_prob: f64::from(dup_milli) / 1000.0,
                duplicate_jitter: SimTime::from_micros(jitter_us),
            },
            ..SimConfig::default()
        };
        check_spans(config, proxies, requests, seed)?;
    }

    /// Open-loop injection, faults on: flows overlap, so object-keyed
    /// attribution must pick the right (oldest) flow and duplicated
    /// completions must land in `unmatched_completions`, never corrupt
    /// an open flow's telescoping sum.
    #[test]
    fn open_loop_spans_sum_exactly_under_faults(
        proxies in 1u32..6,
        requests in 50usize..250,
        seed in any::<u64>(),
        interval_us in 1u64..400,
        dup_milli in 0u32..300,
        jitter_us in 0u64..50,
    ) {
        let config = SimConfig {
            injection: InjectionMode::OpenLoop {
                interval: SimTime::from_micros(interval_us),
            },
            faults: FaultPlan {
                duplicate_prob: f64::from(dup_milli) / 1000.0,
                duplicate_jitter: SimTime::from_micros(jitter_us),
            },
            ..SimConfig::default()
        };
        check_spans(config, proxies, requests, seed)?;
    }
}
