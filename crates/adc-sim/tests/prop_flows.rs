//! Property tests for [`FlowTable`]: for arbitrary insert/remove/lookup
//! interleavings — including seqs behind the window base, which spill
//! into the overflow map — the table behaves exactly like a reference
//! `BTreeMap`. Running under `debug_assertions`, every operation also
//! exercises the table's internal invariants (unique live seqs, live
//! window front after insert and compaction, len/slot accounting).

use adc_core::{ClientId, RequestId};
use adc_sim::FlowTable;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn id(seq: u64) -> RequestId {
    RequestId::new(ClientId::new((seq % 7) as u32), seq)
}

/// One scripted operation. Seqs are drawn from a small universe so that
/// removals hit live flows often and re-inserts land behind the window
/// base (the overflow path) once the base has advanced past them.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Get(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u64..64).prop_map(Op::Insert),
        (0u64..64).prop_map(Op::Insert),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Get),
    ];
    prop::collection::vec(op, 1..500)
}

proptest! {
    #[test]
    fn matches_btreemap_reference(script in ops()) {
        let mut table: FlowTable<u64> = FlowTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (step, op) in script.into_iter().enumerate() {
            let step = step as u64;
            match op {
                Op::Insert(seq) => {
                    // Live seqs must be unique; skip duplicates like the
                    // workload's monotone trace positions would.
                    if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(seq) {
                        table.insert(id(seq), step);
                        slot.insert(step);
                    }
                }
                Op::Remove(seq) => {
                    prop_assert_eq!(table.remove(&id(seq)), model.remove(&seq));
                }
                Op::Get(seq) => {
                    prop_assert_eq!(table.get(&id(seq)), model.get(&seq));
                }
            }
            prop_assert_eq!(table.len(), model.len());
            prop_assert_eq!(table.is_empty(), model.is_empty());
        }
        // Drain everything; the table must agree to the end.
        let live: Vec<u64> = model.keys().copied().collect();
        for seq in live {
            prop_assert_eq!(table.remove(&id(seq)), model.remove(&seq));
        }
        prop_assert!(table.is_empty());
    }

    /// The simulator's closed-loop pattern at a fixed fan-out: monotone
    /// seqs with bounded in-flight flows completing in scrambled order.
    /// Peak occupancy never exceeds the in-flight bound.
    #[test]
    fn bounded_inflight_pattern(
        completions in prop::collection::vec(0usize..16, 50..300),
        inflight in 1usize..16,
    ) {
        let mut table: FlowTable<u64> = FlowTable::new();
        let mut live: Vec<u64> = Vec::new();
        let mut next_seq = 0u64;
        for pick in completions {
            while live.len() < inflight {
                table.insert(id(next_seq), next_seq);
                live.push(next_seq);
                next_seq += 1;
            }
            let victim = live.remove(pick % live.len());
            prop_assert_eq!(table.remove(&id(victim)), Some(victim));
        }
        prop_assert!(table.peak() <= inflight);
        for &seq in &live {
            prop_assert_eq!(table.remove(&id(seq)), Some(seq));
        }
        prop_assert!(table.is_empty());
    }
}
