//! Differential determinism harness for the sharded executor.
//!
//! Runs Figure-11-scale workloads through the single-threaded runner and
//! through `run_sharded` at several shard counts — including a
//! non-power-of-two count, a count that does not divide the proxy count,
//! and a count exceeding it — and demands *byte identity* of the
//! canonical report JSON, the Prometheus metrics exposition, and the
//! convergence series. Sequential injection must match the
//! single-threaded runner exactly; open-loop injection must be invariant
//! in the shard count.

use adc_core::{AdcConfig, AdcProxy, CacheAgent, ProxyId};
use adc_sim::{ConvergenceConfig, InjectionMode, SimConfig, SimTime, Simulation};
use adc_workload::PolygraphConfig;

/// Five proxies: 2 and 4 do not divide it, 7 exceeds it, so the suite
/// covers uneven and partially-empty partitions.
const PROXIES: u32 = 5;

/// Shard counts under test (1 = the sharded code path on one worker).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn agents() -> Vec<AdcProxy> {
    let config = AdcConfig::builder()
        .single_capacity(400)
        .multiple_capacity(400)
        .cache_capacity(200)
        .build();
    (0..PROXIES)
        .map(|i| AdcProxy::new(ProxyId::new(i), PROXIES, config.clone()))
        .collect()
}

/// Figure-11-style workload at CI scale (~8 k requests).
fn workload() -> impl Iterator<Item = adc_workload::RequestRecord> {
    PolygraphConfig::scaled(0.002).build()
}

/// Default latencies (the sharded executor needs a positive lookahead),
/// with convergence probing on so its series enter the comparison.
fn config() -> SimConfig {
    SimConfig {
        convergence: Some(ConvergenceConfig {
            sample_every: 1000,
            top_k: 64,
        }),
        hit_window: 1000,
        sample_every: 1000,
        ..SimConfig::default()
    }
}

#[test]
fn sequential_report_is_byte_identical_to_single_threaded() {
    let reference = Simulation::new(agents(), config()).run(workload());
    let reference_json = reference.to_deterministic_json();
    let reference_conv = reference.convergence.as_ref().expect("convergence enabled");
    assert!(
        reference_conv.samples > 0,
        "the comparison must actually exercise convergence sampling"
    );
    assert!(reference.hits > 0, "workload must produce hits");
    for shards in SHARD_COUNTS {
        let report = Simulation::new(agents(), config()).run_sharded(workload(), shards);
        assert_eq!(
            reference_json,
            report.to_deterministic_json(),
            "shards={shards} diverged from the single-threaded runner"
        );
        // The JSON covers these, but keep first-class failures readable.
        assert_eq!(
            reference_conv.agreement,
            report
                .convergence
                .as_ref()
                .expect("convergence enabled")
                .agreement,
            "shards={shards} convergence series diverged"
        );
    }
}

#[test]
fn sequential_metrics_exposition_is_byte_identical_to_single_threaded() {
    let reference = Simulation::new(agents(), config()).run_with_metrics(workload());
    let reference_prom = reference
        .metrics
        .as_ref()
        .expect("metrics probe attached")
        .snapshot
        .to_prometheus();
    assert!(
        reference_prom.contains("adc_requests_completed"),
        "exposition must carry completion families:\n{reference_prom}"
    );
    for shards in SHARD_COUNTS {
        let report =
            Simulation::new(agents(), config()).run_sharded_with_metrics(workload(), shards);
        let prom = report
            .metrics
            .as_ref()
            .expect("metrics probe attached")
            .snapshot
            .to_prometheus();
        assert_eq!(
            reference_prom, prom,
            "shards={shards} metrics exposition diverged"
        );
        assert_eq!(
            reference.metrics, report.metrics,
            "shards={shards} per-proxy metric summaries diverged"
        );
        assert_eq!(
            reference.to_deterministic_json(),
            report.to_deterministic_json(),
            "shards={shards} report diverged under the metrics probe"
        );
    }
}

#[test]
fn sequential_returns_agents_in_proxy_id_order() {
    let (_, reference) = Simulation::new(agents(), config()).run_with_agents(workload());
    for shards in SHARD_COUNTS {
        let (_, returned) =
            Simulation::new(agents(), config()).run_sharded_with_agents(workload(), shards);
        assert_eq!(reference.len(), returned.len());
        for (p, (a, b)) in reference.iter().zip(&returned).enumerate() {
            assert_eq!(
                a.proxy_id(),
                b.proxy_id(),
                "shards={shards}: agent {p} out of order"
            );
            assert_eq!(
                a.stats(),
                b.stats(),
                "shards={shards}: agent {p} state diverged"
            );
        }
    }
}

#[test]
fn forced_pool_and_tuning_stay_byte_identical_at_figure_scale() {
    // The synchronization layer (persistent pool, widening, batched
    // folds) is pure execution strategy: force an aggressive tuning —
    // real worker threads even on a single-core runner, a small fold
    // batch — and demand byte identity with the single-threaded runner
    // in sequential mode and with shards=1 in open-loop mode.
    use adc_sim::ShardTuning;
    let tuned = ShardTuning {
        pool_threads: Some(3),
        widen: true,
        fold_batch: 4,
        // Profiling rides along to prove the clock reads never leak
        // into the deterministic bytes at figure scale.
        profile: true,
    };
    let reference = Simulation::new(agents(), config()).run(workload());
    let mut seq = config();
    seq.shard = tuned;
    for shards in SHARD_COUNTS {
        let report = Simulation::new(agents(), seq.clone()).run_sharded(workload(), shards);
        assert_eq!(
            reference.to_deterministic_json(),
            report.to_deterministic_json(),
            "shards={shards} diverged under forced pool tuning (sequential)"
        );
    }
    // Open loop without barrier-driven samplers, so widening and
    // batched folds genuinely engage under the forced pool.
    let mut open = config();
    open.convergence = None;
    open.sample_occupancy = false;
    open.injection = InjectionMode::OpenLoop {
        interval: SimTime::from_micros(200),
    };
    let mut open_tuned = open.clone();
    open_tuned.shard = tuned;
    let base = Simulation::new(agents(), open).run_sharded(workload(), 1);
    let exec = base.shard_exec.expect("sharded runs report exec stats");
    assert!(exec.windows_widened > 0, "widening must engage: {exec:?}");
    for shards in &SHARD_COUNTS[1..] {
        let report = Simulation::new(agents(), open_tuned.clone()).run_sharded(workload(), *shards);
        assert_eq!(
            base.to_deterministic_json(),
            report.to_deterministic_json(),
            "shards={shards} open-loop report diverged under forced pool tuning"
        );
    }
}

#[test]
fn open_loop_report_is_invariant_in_the_shard_count() {
    let mut open = config();
    open.injection = InjectionMode::OpenLoop {
        interval: SimTime::from_micros(200),
    };
    let run = |shards| {
        Simulation::new(agents(), open.clone()).run_sharded_with_metrics(workload(), shards)
    };
    let reference = run(1);
    let reference_json = reference.to_deterministic_json();
    let reference_prom = reference
        .metrics
        .as_ref()
        .expect("metrics probe attached")
        .snapshot
        .to_prometheus();
    assert!(
        reference.peak_flows > 1,
        "open loop must actually overlap flows for this test to bite"
    );
    // Skip the already-covered shards=1 self-comparison.
    for shards in &SHARD_COUNTS[1..] {
        let report = run(*shards);
        assert_eq!(
            reference_json,
            report.to_deterministic_json(),
            "shards={shards} open-loop report diverged from shards=1"
        );
        assert_eq!(
            reference_prom,
            report
                .metrics
                .as_ref()
                .expect("metrics probe attached")
                .snapshot
                .to_prometheus(),
            "shards={shards} open-loop metrics exposition diverged"
        );
    }
}
