//! Property tests pinning the calendar queue's determinism contract:
//! [`CalendarQueue`] pops in exactly the `(at, seq)` order a reference
//! `BinaryHeap` produces, for arbitrary push/pop interleavings. The
//! simulator's bit-for-bit reproducibility rests on this equivalence —
//! the event loop swapped its heap for the calendar queue on the promise
//! that the total order is unchanged.

use adc_sim::CalendarQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Push at this (possibly far-future, possibly past) timestamp.
    Push(u64),
    /// Pop once and compare.
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // Timestamps mix bucket-local values, multi-year jumps and
    // boundary-adjacent keys to exercise window advance, rewind and the
    // global-minimum fallback.
    let op = prop_oneof![
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..u64::MAX / 2).prop_map(Op::Push),
        Just(Op::Pop),
    ];
    prop::collection::vec(op, 1..400)
}

proptest! {
    #[test]
    fn matches_binary_heap_reference(script in ops()) {
        let mut calendar = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for op in script {
            match op {
                Op::Push(at) => {
                    calendar.push(at, seq, ());
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                Op::Pop => {
                    let expected = heap.pop().map(|Reverse(key)| key);
                    let got = calendar.pop().map(|(at, s, ())| (at, s));
                    prop_assert_eq!(got, expected);
                    prop_assert_eq!(calendar.len(), heap.len());
                }
            }
        }
        // Drain both: every remaining item must come out in heap order.
        while let Some(Reverse(expected)) = heap.pop() {
            let got = calendar.pop().map(|(at, s, ())| (at, s));
            prop_assert_eq!(got, Some(expected));
        }
        prop_assert!(calendar.is_empty());
    }

    /// Pops come out in strictly increasing `(at, seq)` order except
    /// immediately after a rewind (a push behind the last popped key),
    /// which legitimately restarts the monotone sequence. This is the
    /// external statement of the queue's debug-build `last_pop` check.
    #[test]
    fn pops_monotone_between_rewinds(script in ops()) {
        let mut calendar = CalendarQueue::new();
        let mut seq = 0u64;
        let mut last_pop: Option<(u64, u64)> = None;
        for op in script {
            match op {
                Op::Push(at) => {
                    if last_pop.is_some_and(|last| (at, seq) < last) {
                        last_pop = None; // rewind: monotonicity restarts
                    }
                    calendar.push(at, seq, ());
                    seq += 1;
                }
                Op::Pop => {
                    if let Some((at, s, ())) = calendar.pop() {
                        prop_assert!(
                            last_pop.is_none_or(|last| last < (at, s)),
                            "pop {:?} not after {:?}", (at, s), last_pop
                        );
                        last_pop = Some((at, s));
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_simulation_shaped_batches(
        deltas in prop::collection::vec((0u64..100_000, 1usize..4), 1..200)
    ) {
        // The simulator's actual pattern: every push is at-or-after the
        // last popped time, with a few distinct latency magnitudes.
        let mut calendar = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        calendar.push(0, seq, ());
        heap.push(Reverse((0, seq)));
        seq += 1;
        let mut pending = deltas.into_iter();
        loop {
            let expected = heap.pop().map(|Reverse(key)| key);
            let got = calendar.pop().map(|(at, s, ())| (at, s));
            prop_assert_eq!(got, expected);
            let Some((at, _)) = expected else { break };
            now = at;
            if let Some((delta, fanout)) = pending.next() {
                for i in 0..fanout as u64 {
                    let t = now + delta + i * 1_000;
                    calendar.push(t, seq, ());
                    heap.push(Reverse((t, seq)));
                    seq += 1;
                }
            }
        }
        prop_assert!(calendar.is_empty());
        let _ = now;
    }
}
