//! Property tests for the sharded executor's barrier protocol.
//!
//! Two layers:
//!
//! 1. An **abstract model** of the window protocol — per-shard ordered
//!    queues, lookahead-aligned windows, barrier-routed cross-shard
//!    spawns — checked against a single globally-ordered reference queue
//!    over randomized self-spawning event populations. The model proves
//!    the protocol itself: every shard processes exactly the events the
//!    reference processes, in the reference's `(at, seq)` order, and no
//!    cross-shard message is ever delivered before the barrier that
//!    routed it (the lookahead property).
//! 2. **Whole-simulator differentials** over randomized small
//!    configurations: sequential sharded runs must equal the
//!    single-threaded runner byte-for-byte, and open-loop runs must be
//!    invariant in the shard count.

use proptest::prelude::*;
use std::collections::BTreeMap;

/// SplitMix64 — the model's only randomness, derived from event keys so
/// both executions see identical spawn decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Event classes mirroring the executor's widening bound
/// ([`Shard::cross_send_bound`] in `sharded.rs`): `Fast` events
/// (proxy-bound) may emit a cross-shard message the moment they are
/// processed; `Slow` events (origin-bound) only spawn a local `Fast`
/// reply one `slow_extra` later; `Sink` events (client-bound) are
/// absorbed without consequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Fast,
    Slow,
    Sink,
}

/// A model event: globally unique `(at, seq)`, owned by `shard`, of
/// widening class `class`, and `gen` spawn generations left behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MEv {
    at: u64,
    seq: u64,
    shard: usize,
    class: Class,
    gen: u8,
}

/// Deterministic spawns of a processed event. `Fast` events spawn up to
/// two children of hash-chosen class, each targeting a hash-chosen
/// shard; cross-shard children are delayed by at least the lookahead
/// `w` (the protocol's contract), local children by any amount
/// including zero. `Slow` events spawn only local `Fast` replies at
/// least `slow_extra` later (the origin's reply latency). `Sink`
/// events spawn nothing.
fn children(ev: MEv, shards: usize, w: u64, slow_extra: u64) -> Vec<MEv> {
    if ev.gen == 0 || ev.class == Class::Sink {
        return Vec::new();
    }
    let h = mix(ev.at ^ (ev.seq << 1) ^ 0x5EED);
    (0..(h % 3))
        .map(|i| {
            let hi = mix(h ^ (i + 1));
            let (target, delay, class) = match ev.class {
                Class::Slow => (ev.shard, slow_extra + hi % 20, Class::Fast),
                _ => {
                    let target = (mix(hi) % shards as u64) as usize;
                    let delay = if target == ev.shard {
                        hi % 20
                    } else {
                        w + hi % 20
                    };
                    let class = match hi % 3 {
                        0 => Class::Fast,
                        1 => Class::Slow,
                        _ => Class::Sink,
                    };
                    (target, delay, class)
                }
            };
            MEv {
                at: ev.at + delay,
                // Append a nonzero base-4 digit to the parent's path
                // (see `root_seq`): seqs stay globally unique.
                seq: ev.seq * 4 + (i + 1),
                shard: target,
                class,
                gen: ev.gen - 1,
            }
        })
        .collect()
}

/// Reference: one global queue, processed in strict `(at, seq)` order.
fn reference_run(initial: &[MEv], shards: usize, w: u64, slow_extra: u64) -> Vec<MEv> {
    let mut queue: BTreeMap<(u64, u64), MEv> = BTreeMap::new();
    for &ev in initial {
        queue.insert((ev.at, ev.seq), ev);
    }
    let mut log = Vec::new();
    while let Some((&key, &ev)) = queue.first_key_value() {
        queue.remove(&key);
        log.push(ev);
        for child in children(ev, shards, w, slow_extra) {
            queue.insert((child.at, child.seq), child);
        }
    }
    log
}

/// The model's widening bound, mirroring `Shard::cross_send_bound`:
/// the earliest instant this queue could emit a cross-shard message.
/// Any pending `Fast` event caps it at the queue head's timestamp; a
/// queue of only `Slow`/`Sink` work is `slow_extra` weaker; `Sink`-only
/// (or empty) queues never send.
fn model_bound(queue: &BTreeMap<(u64, u64), MEv>, slow_extra: u64) -> u64 {
    let Some((&(next_at, _), _)) = queue.first_key_value() else {
        return u64::MAX;
    };
    if queue.values().any(|e| e.class == Class::Fast) {
        next_at
    } else if queue.values().any(|e| e.class == Class::Slow) {
        next_at.saturating_add(slow_extra)
    } else {
        u64::MAX
    }
}

/// The window protocol: per-shard queues, lookahead-aligned windows,
/// cross-shard spawns routed at the barrier. With `widen`, the barrier
/// jumps to the lookahead-aligned window containing the earliest
/// possible cross-shard send, exactly as the executor does. Returns
/// the per-shard processing logs plus the number of lookahead
/// violations (cross-shard spawns landing before the barrier that
/// routed them) and the number of widened windows; panics (via
/// `prop_assert` in the caller) are driven by the returned counts.
fn windowed_run(
    initial: &[MEv],
    shards: usize,
    w: u64,
    slow_extra: u64,
    widen: bool,
) -> (
    Vec<Vec<MEv>>,
    /* violations */ usize,
    /* widened */ usize,
) {
    let mut queues: Vec<BTreeMap<(u64, u64), MEv>> = vec![BTreeMap::new(); shards];
    for &ev in initial {
        queues[ev.shard].insert((ev.at, ev.seq), ev);
    }
    let mut logs: Vec<Vec<MEv>> = vec![Vec::new(); shards];
    let mut violations = 0usize;
    let mut widened = 0usize;
    while let Some(min_next) = queues
        .iter()
        .filter_map(|q| q.first_key_value().map(|(&(at, _), _)| at))
        .min()
    {
        let grid_end = (min_next / w) * w + w;
        let mut window_end = grid_end;
        if widen {
            let earliest_send = queues
                .iter()
                .map(|q| model_bound(q, slow_extra))
                .min()
                .unwrap_or(u64::MAX);
            window_end = if earliest_send == u64::MAX {
                u64::MAX
            } else {
                ((earliest_send / w) * w).saturating_add(w).max(grid_end)
            };
            if window_end > grid_end {
                widened += 1;
            }
        }
        let mut outbox: Vec<MEv> = Vec::new();
        // Shards are independent inside a window: this sequential sweep
        // is equivalent to running them concurrently.
        for (s, queue) in queues.iter_mut().enumerate() {
            while let Some((&key, &ev)) = queue.first_key_value() {
                if key.0 >= window_end {
                    break;
                }
                queue.remove(&key);
                logs[s].push(ev);
                for child in children(ev, shards, w, slow_extra) {
                    if child.shard == s {
                        queue.insert((child.at, child.seq), child);
                    } else {
                        outbox.push(child);
                    }
                }
            }
        }
        // The barrier: route cross-shard spawns; the lookahead property
        // says none of them lands inside the window just executed —
        // widened or not.
        for child in outbox {
            if child.at < window_end {
                violations += 1;
            }
            queues[child.shard].insert((child.at, child.seq), child);
        }
    }
    (logs, violations, widened)
}

/// Seq of the `i`-th initial event: a 6-digit base-4 number with every
/// digit in `{1, 2}` (digit k = 1 + bit k of `i`). All seqs in the
/// population are then base-4 numbers whose digits are all nonzero —
/// initial events by construction, spawned events because `children`
/// only appends nonzero digits — and such numbers are in bijection with
/// their digit strings, so distinct events never share a seq.
fn root_seq(i: usize) -> u64 {
    (0..6).map(|k| (1 + ((i as u64 >> k) & 1)) << (2 * k)).sum()
}

/// A population of initial events with unique seqs across 1..=shards
/// shards, plus a lookahead width and an origin-reply latency.
fn model_inputs() -> impl Strategy<Value = (Vec<MEv>, usize, u64, u64)> {
    (
        proptest::collection::vec((0u64..200, 0u64..1 << 16, 0u8..3, 0u8..4), 1..40),
        1usize..6,
        2u64..12,
        0u64..40,
    )
        .prop_map(|(raw, shards, w, slow_extra)| {
            let events = raw
                .into_iter()
                .enumerate()
                .map(|(i, (at, shard_pick, class_pick, gen))| MEv {
                    at,
                    seq: root_seq(i),
                    shard: (shard_pick % shards as u64) as usize,
                    class: match class_pick {
                        0 => Class::Fast,
                        1 => Class::Slow,
                        _ => Class::Sink,
                    },
                    gen,
                })
                .collect();
            (events, shards, w, slow_extra)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The window protocol is observationally equivalent to one global
    /// ordered queue: every shard's processing log is exactly the
    /// reference log restricted to that shard, in reference order.
    #[test]
    fn window_protocol_matches_single_queue_reference(
        (initial, shards, w, slow_extra) in model_inputs(),
    ) {
        let reference = reference_run(&initial, shards, w, slow_extra);
        let (logs, violations, _) = windowed_run(&initial, shards, w, slow_extra, false);
        prop_assert_eq!(violations, 0, "cross-shard spawn delivered before its barrier");
        for (s, log) in logs.iter().enumerate() {
            let expected: Vec<MEv> =
                reference.iter().copied().filter(|e| e.shard == s).collect();
            prop_assert_eq!(
                &expected, log,
                "shard {} diverged from the reference order", s
            );
        }
        // No event is lost or invented.
        let total: usize = logs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, reference.len());
    }

    /// Lookahead property in isolation: any spawn crossing shards is
    /// timestamped at or after the barrier of the window producing it —
    /// already counted inside `windowed_run`, asserted here on bigger
    /// populations to hunt boundary cases (`at` exactly on the grid).
    #[test]
    fn cross_shard_spawns_respect_the_lookahead(
        (initial, shards, w, slow_extra) in model_inputs(),
    ) {
        let (_, violations, _) = windowed_run(&initial, shards, w, slow_extra, false);
        prop_assert_eq!(violations, 0);
    }

    /// Adaptive widening never admits a cross-shard delivery: even when
    /// the barrier jumps past the plain grid to the window containing
    /// the earliest possible cross-shard send, every routed spawn still
    /// lands at or beyond the widened barrier, and the per-shard logs
    /// remain exactly the single-queue reference.
    #[test]
    fn widened_barriers_never_admit_a_cross_shard_delivery(
        (initial, shards, w, slow_extra) in model_inputs(),
    ) {
        let reference = reference_run(&initial, shards, w, slow_extra);
        let (logs, violations, _) = windowed_run(&initial, shards, w, slow_extra, true);
        prop_assert_eq!(
            violations, 0,
            "widened barrier admitted a cross-shard delivery"
        );
        for (s, log) in logs.iter().enumerate() {
            let expected: Vec<MEv> =
                reference.iter().copied().filter(|e| e.shard == s).collect();
            prop_assert_eq!(
                &expected, log,
                "shard {} diverged from the reference under widening", s
            );
        }
        let total: usize = logs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, reference.len());
    }
}

/// Widening must actually engage for the property above to bite: a
/// `Slow` head pushes the bound one reply latency out, and `Sink`-only
/// tails drain in a single unbounded window.
#[test]
fn widening_engages_on_slow_and_sink_populations() {
    let ev = |at, i, shard, class| MEv {
        at,
        seq: root_seq(i),
        shard,
        class,
        gen: 0,
    };
    // Two sinks 10 grid windows apart on different shards: unwidened
    // needs two windows; widened drains everything in one unbounded
    // window.
    let sinks = [ev(0, 0, 0, Class::Sink), ev(100, 1, 1, Class::Sink)];
    let (logs, violations, widened) = windowed_run(&sinks, 2, 10, 25, true);
    assert_eq!(
        (violations, widened),
        (0, 1),
        "sink-only run must widen once"
    );
    assert_eq!(logs.iter().map(Vec::len).sum::<usize>(), 2);
    // A slow head: the earliest cross-shard send is one reply latency
    // out, so the first barrier jumps from 10 to grid(0 + 25) + 10.
    let slow = [ev(0, 0, 0, Class::Slow), ev(40, 1, 1, Class::Fast)];
    let (_, violations, widened) = windowed_run(&slow, 2, 10, 25, true);
    assert_eq!(violations, 0);
    assert!(widened >= 1, "slow head must widen the first window");
}

// ---------------------------------------------------------------------
// Whole-simulator differentials.
// ---------------------------------------------------------------------

use adc_core::{AdcConfig, AdcProxy, ProxyId};
use adc_sim::{InjectionMode, SimConfig, SimTime, Simulation};
use adc_workload::StationaryZipf;

fn sim_agents(proxies: u32) -> Vec<AdcProxy> {
    let config = AdcConfig::builder()
        .single_capacity(64)
        .multiple_capacity(64)
        .cache_capacity(24)
        .max_hops(8)
        .build();
    (0..proxies)
        .map(|i| AdcProxy::new(ProxyId::new(i), proxies, config.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential injection: the sharded executor reproduces the
    /// single-threaded runner byte-for-byte on randomized populations,
    /// workloads and shard counts.
    #[test]
    fn random_sequential_runs_match_the_single_threaded_runner(
        proxies in 1u32..6,
        requests in 50usize..250,
        seed in any::<u64>(),
        shards in 2usize..6,
    ) {
        let workload = || StationaryZipf::new(60, 0.8, 4, seed).take(requests);
        let legacy = Simulation::new(sim_agents(proxies), SimConfig::default())
            .run(workload());
        let sharded = Simulation::new(sim_agents(proxies), SimConfig::default())
            .run_sharded(workload(), shards);
        prop_assert_eq!(
            legacy.to_deterministic_json(),
            sharded.to_deterministic_json()
        );
    }

    /// Open-loop injection: randomized intervals and populations give
    /// the same bytes at any shard count.
    #[test]
    fn random_open_loop_runs_are_shard_count_invariant(
        proxies in 1u32..6,
        requests in 50usize..250,
        seed in any::<u64>(),
        shards in 2usize..6,
        interval_us in 1u64..400,
    ) {
        let config = SimConfig {
            injection: InjectionMode::OpenLoop {
                interval: SimTime::from_micros(interval_us),
            },
            ..SimConfig::default()
        };
        let workload = || StationaryZipf::new(60, 0.8, 4, seed).take(requests);
        let one = Simulation::new(sim_agents(proxies), config.clone())
            .run_sharded(workload(), 1);
        let many = Simulation::new(sim_agents(proxies), config.clone())
            .run_sharded(workload(), shards);
        prop_assert_eq!(one.to_deterministic_json(), many.to_deterministic_json());
    }

    /// The synchronization knobs are pure execution strategy: randomized
    /// pool sizes, widening on/off and fold batches produce the same
    /// bytes as the most conservative tuning (no pool, no widening,
    /// fold every barrier) at every shard count.
    #[test]
    fn random_tuning_never_changes_open_loop_bytes(
        proxies in 1u32..6,
        requests in 50usize..200,
        seed in any::<u64>(),
        shards in 1usize..6,
        interval_us in 1u64..400,
        widen in any::<bool>(),
        fold_batch in 1u32..8,
        pool in 0usize..3,
    ) {
        use adc_sim::ShardTuning;
        // Occupancy sampling pins the legacy barrier cadence (see the
        // gating table in sharded.rs); disable it so widening and
        // batched folds genuinely engage.
        let mut config = SimConfig {
            injection: InjectionMode::OpenLoop {
                interval: SimTime::from_micros(interval_us),
            },
            sample_occupancy: false,
            ..SimConfig::default()
        };
        let workload = || StationaryZipf::new(60, 0.8, 4, seed).take(requests);
        config.shard = ShardTuning {
            pool_threads: Some(0),
            widen: false,
            fold_batch: 1,
            profile: false,
        };
        let conservative = Simulation::new(sim_agents(proxies), config.clone())
            .run_sharded(workload(), 1);
        config.shard = ShardTuning {
            pool_threads: Some(pool),
            widen,
            fold_batch,
            // Profiling on the tuned side: wall-clock measurement must
            // never perturb the deterministic bytes.
            profile: true,
        };
        let tuned = Simulation::new(sim_agents(proxies), config)
            .run_sharded(workload(), shards);
        prop_assert_eq!(
            conservative.to_deterministic_json(),
            tuned.to_deterministic_json()
        );
    }
}
