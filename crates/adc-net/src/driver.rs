//! Replays a workload against a live TCP cluster and reports hit
//! statistics — the bridge between `adc-workload` streams and the real
//! deployment, mirroring what the simulator does for the modelled one.

use crate::cluster::Cluster;
use adc_core::{CacheAgent, ClientId, ProxyId};
use adc_workload::RequestRecord;
use std::io;
use std::time::{Duration, Instant};

/// Results of replaying a workload over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveReport {
    /// Requests completed.
    pub completed: u64,
    /// Requests served from a proxy cache.
    pub hits: u64,
    /// Requests that timed out (counted, not retried).
    pub timeouts: u64,
    /// Total object-body bytes received by the client.
    pub bytes_received: u64,
    /// Wall-clock duration of the replay.
    pub wall_time: Duration,
}

impl DriveReport {
    /// Fraction of completed requests served from proxy caches.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.completed as f64
        }
    }
}

/// Replays `workload` through `cluster`, one request at a time, entering
/// through proxy `client mod n` (the simulator's sticky assignment).
///
/// Uses a single client endpoint regardless of the records' client IDs —
/// the ID only selects the entry proxy, matching the simulator's
/// accounting.
///
/// # Errors
///
/// Propagates socket errors other than per-request timeouts (which are
/// counted in the report).
pub async fn drive_workload<A: CacheAgent + Send + 'static>(
    cluster: &Cluster<A>,
    workload: impl IntoIterator<Item = RequestRecord>,
    per_request_timeout: Duration,
) -> io::Result<DriveReport> {
    let n = cluster.num_proxies();
    let client = cluster.client(ClientId::new(u32::MAX - 1)).await?;
    let start = Instant::now();
    let mut report = DriveReport {
        completed: 0,
        hits: 0,
        timeouts: 0,
        bytes_received: 0,
        wall_time: Duration::ZERO,
    };
    for record in workload {
        let via = ProxyId::new(record.client.raw() % n);
        match client
            .request_timeout(record.object, via, per_request_timeout)
            .await
        {
            Ok((reply, body)) => {
                report.completed += 1;
                report.bytes_received += body.len() as u64;
                if reply.served_from.is_hit() {
                    report.hits += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                report.timeouts += 1;
            }
            Err(e) => return Err(e),
        }
    }
    report.wall_time = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::AdcConfig;
    use adc_workload::StationaryZipf;

    #[tokio::test]
    async fn replay_over_tcp_produces_hits() {
        let config = AdcConfig::builder()
            .single_capacity(128)
            .multiple_capacity(128)
            .cache_capacity(64)
            .max_hops(8)
            .build();
        let cluster = Cluster::spawn_adc(3, config).await.unwrap();
        let workload: Vec<RequestRecord> = StationaryZipf::new(30, 1.0, 6, 5).take(400).collect();
        let report = drive_workload(&cluster, workload, Duration::from_secs(5))
            .await
            .unwrap();
        assert_eq!(report.completed, 400);
        assert_eq!(report.timeouts, 0);
        assert!(
            report.hit_rate() > 0.3,
            "hot objects over TCP should hit: {:.3}",
            report.hit_rate()
        );
        assert!(report.bytes_received > 0);
        // The TCP cluster's own counters agree on the workload volume.
        assert!(cluster.cluster_stats().requests_received >= 400);
    }
}
