//! Replays a workload against a live TCP cluster and reports hit
//! statistics — the bridge between `adc-workload` streams and the real
//! deployment, mirroring what the simulator does for the modelled one.

use crate::client::TraceScrapeResult;
use crate::cluster::Cluster;
use crate::flight::FlightRecorder;
use adc_core::{CacheAgent, ClientId, ProxyId};
use adc_workload::RequestRecord;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Consecutive timeouts through one proxy before the traced driver
/// declares it dead, stops routing to it, and (with a flight recorder)
/// dumps its post-mortem.
pub const PEER_DEATH_THRESHOLD: u32 = 3;

/// Results of replaying a workload over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveReport {
    /// Requests completed.
    pub completed: u64,
    /// Requests served from a proxy cache.
    pub hits: u64,
    /// Requests that timed out (counted, not retried).
    pub timeouts: u64,
    /// Total object-body bytes received by the client.
    pub bytes_received: u64,
    /// Wall-clock duration of the replay.
    pub wall_time: Duration,
}

impl DriveReport {
    /// Fraction of completed requests served from proxy caches.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.completed as f64
        }
    }
}

/// Replays `workload` through `cluster`, one request at a time, entering
/// through proxy `client mod n` (the simulator's sticky assignment).
///
/// Uses a single client endpoint regardless of the records' client IDs —
/// the ID only selects the entry proxy, matching the simulator's
/// accounting.
///
/// # Errors
///
/// Propagates socket errors other than per-request timeouts (which are
/// counted in the report).
pub async fn drive_workload<A: CacheAgent + Send + 'static>(
    cluster: &Cluster<A>,
    workload: impl IntoIterator<Item = RequestRecord>,
    per_request_timeout: Duration,
) -> io::Result<DriveReport> {
    let n = cluster.num_proxies();
    let client = cluster.client(ClientId::new(u32::MAX - 1)).await?;
    let start = Instant::now();
    let mut report = DriveReport {
        completed: 0,
        hits: 0,
        timeouts: 0,
        bytes_received: 0,
        wall_time: Duration::ZERO,
    };
    for record in workload {
        let via = ProxyId::new(record.client.raw() % n);
        match client
            .request_timeout(record.object, via, per_request_timeout)
            .await
        {
            Ok((reply, body)) => {
                report.completed += 1;
                report.bytes_received += body.len() as u64;
                if reply.served_from.is_hit() {
                    report.hits += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                report.timeouts += 1;
            }
            Err(e) => return Err(e),
        }
    }
    report.wall_time = start.elapsed();
    Ok(report)
}

/// Results of a traced replay: the plain [`DriveReport`] plus the
/// client-side trace scrape and what the peer-death watchdog saw.
#[derive(Debug)]
pub struct TracedDriveReport {
    /// The hit/timeout accounting, as in [`drive_workload`].
    pub report: DriveReport,
    /// The client's own span ring drained at the end of the replay,
    /// with collector-clock samples on [`Cluster::epoch`] so it merges
    /// like any scraped node lane. `None` when the cluster is untraced.
    pub client_trace: Option<TraceScrapeResult>,
    /// Proxies the watchdog declared dead during the replay.
    pub dead_proxies: Vec<ProxyId>,
    /// Post-mortem files written for the dead proxies (flight recorder
    /// runs only).
    pub postmortems: Vec<PathBuf>,
}

/// Whether a request error looks like the entry proxy dying (silent or
/// connection-level failure) rather than a driver-side bug.
fn is_peer_death_signal(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    )
}

/// Like [`drive_workload`] but with live-tracing plumbing: the client
/// records root spans, consecutive per-proxy failures (timeouts or
/// connection errors) trip a peer-death watchdog (threshold
/// [`PEER_DEATH_THRESHOLD`]) that reroutes around the dead proxy, and —
/// when `flight` is given — each death dumps the proxy's post-mortem
/// from the shared in-process handles.
///
/// # Errors
///
/// Propagates socket errors that are not peer-death signals; returns
/// `BrokenPipe` when every proxy has been declared dead.
pub async fn drive_workload_traced<A: CacheAgent + Send + 'static>(
    cluster: &Cluster<A>,
    workload: impl IntoIterator<Item = RequestRecord>,
    per_request_timeout: Duration,
    flight: Option<&FlightRecorder>,
) -> io::Result<TracedDriveReport> {
    let n = cluster.num_proxies();
    let client = cluster.client(ClientId::new(u32::MAX - 1)).await?;
    let start = Instant::now();
    let mut report = DriveReport {
        completed: 0,
        hits: 0,
        timeouts: 0,
        bytes_received: 0,
        wall_time: Duration::ZERO,
    };
    let mut consecutive_timeouts = vec![0u32; n as usize];
    let mut dead = vec![false; n as usize];
    let mut dead_proxies = Vec::new();
    let mut postmortems = Vec::new();
    for record in workload {
        // Sticky assignment, rerouted past proxies declared dead. The
        // check is the driver's own strike table, not the in-process
        // alive flag: detection must stay observational, as it would be
        // against a remote deployment.
        let preferred = record.client.raw() % n;
        let Some(via) = (0..n)
            .map(|step| (preferred + step) % n)
            .find(|&p| !dead[p as usize])
        else {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "every proxy is dead",
            ));
        };
        match client
            .request_timeout(record.object, ProxyId::new(via), per_request_timeout)
            .await
        {
            Ok((reply, body)) => {
                consecutive_timeouts[via as usize] = 0;
                report.completed += 1;
                report.bytes_received += body.len() as u64;
                if reply.served_from.is_hit() {
                    report.hits += 1;
                }
            }
            Err(e) if is_peer_death_signal(&e) => {
                report.timeouts += 1;
                consecutive_timeouts[via as usize] += 1;
                if consecutive_timeouts[via as usize] >= PEER_DEATH_THRESHOLD {
                    dead[via as usize] = true;
                    let p = ProxyId::new(via);
                    dead_proxies.push(p);
                    if let Some(flight) = flight {
                        let now_us = cluster.epoch.elapsed().as_micros() as u64;
                        let reason = format!(
                            "driver declared peer dead after {PEER_DEATH_THRESHOLD} consecutive timeouts"
                        );
                        if let Ok(path) =
                            flight.dump_proxy(&cluster.proxies[via as usize], now_us, &reason)
                        {
                            postmortems.push(path);
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    report.wall_time = start.elapsed();
    // Drain the client's own ring, sampling the collector clock around
    // the node-clock read so the merger can align it exactly like a
    // wire scrape (with a near-zero uncertainty window).
    let client_trace = client.tracer().map(|tracer| {
        let sent_us = cluster.epoch.elapsed().as_micros() as u64;
        let (dropped, jsonl) = tracer.lock().scrape();
        let node_now_us = client.epoch().elapsed().as_micros() as u64;
        let recv_us = cluster.epoch.elapsed().as_micros() as u64;
        TraceScrapeResult {
            node_now_us,
            dropped,
            jsonl,
            sent_us,
            recv_us,
        }
    });
    Ok(TracedDriveReport {
        report,
        client_trace,
        dead_proxies,
        postmortems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::AdcConfig;
    use adc_workload::StationaryZipf;

    #[tokio::test]
    async fn replay_over_tcp_produces_hits() {
        let config = AdcConfig::builder()
            .single_capacity(128)
            .multiple_capacity(128)
            .cache_capacity(64)
            .max_hops(8)
            .build();
        let cluster = Cluster::spawn_adc(3, config).await.unwrap();
        let workload: Vec<RequestRecord> = StationaryZipf::new(30, 1.0, 6, 5).take(400).collect();
        let report = drive_workload(&cluster, workload, Duration::from_secs(5))
            .await
            .unwrap();
        assert_eq!(report.completed, 400);
        assert_eq!(report.timeouts, 0);
        assert!(
            report.hit_rate() > 0.3,
            "hot objects over TCP should hit: {:.3}",
            report.hit_rate()
        );
        assert!(report.bytes_received > 0);
        // The TCP cluster's own counters agree on the workload volume.
        assert!(cluster.cluster_stats().requests_received >= 400);
    }
}
