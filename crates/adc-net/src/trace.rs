//! Per-node live tracing: opens and closes wall-clock spans as traced
//! frames pass through a node.
//!
//! A [`NodeTracer`] wraps the bounded [`SpanRing`] from `adc-obs` with
//! the request-flow bookkeeping a proxy needs: a forwarded request
//! opens a *pending* span keyed by its [`RequestId`], and the matching
//! reply — which travels back hop-by-hop along the forwarding chain —
//! closes it. Local hits and origin serves are leaf spans recorded
//! closed in one step. Everything is node-local: timestamps are on the
//! owning node's monotonic clock, and the cross-node merge happens at
//! the collector after an in-band trace scrape.

use crate::protocol::TraceContext;
use adc_core::RequestId;
use adc_obs::netspan::{derive_span_id, NetSpan, SpanRing};
use adc_obs::SegmentKind;

/// Pending spans are bounded separately from the ring: a flow whose
/// reply never returns (timeout, peer death) would otherwise leak its
/// entry forever. At the cap, new spans are counted as dropped instead
/// of opened.
const MAX_PENDING: usize = 8192;

/// Snapshot of a tracer's lifetime counters, for metric rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCounters {
    /// Spans recorded over the node's lifetime (kept or dropped).
    pub recorded: u64,
    /// Spans lost: ring overwrites plus pending-table overflow.
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingSpan {
    ctx: TraceContext,
    span_id: u64,
    start_us: u64,
    object: u64,
    kind: SegmentKind,
}

/// The live span recorder owned by one cluster node.
#[derive(Debug)]
pub struct NodeTracer {
    node: u32,
    ring: SpanRing,
    // A flow id maps to at most one open span per node. A looping
    // request that revisits a node overwrites its earlier entry —
    // mirroring the agent's single-waiter bookkeeping — so the wasted
    // hop folds into the span the revisit opens.
    pending: Vec<(RequestId, PendingSpan)>,
    next_span: u64,
    overflow_dropped: u64,
}

impl NodeTracer {
    /// Creates a tracer recording into a ring of `capacity` spans,
    /// labelling them with lane `node` (proxy raw id, or the
    /// [`CLIENT_LANE`][adc_obs::netspan::CLIENT_LANE]/
    /// [`ORIGIN_LANE`][adc_obs::netspan::ORIGIN_LANE] sentinels).
    pub fn new(node: u32, capacity: usize) -> NodeTracer {
        NodeTracer {
            node,
            ring: SpanRing::with_capacity(capacity),
            pending: Vec::new(),
            next_span: 0,
            overflow_dropped: 0,
        }
    }

    /// The lane this tracer records under.
    pub fn node(&self) -> u32 {
        self.node
    }

    fn alloc_span(&mut self) -> u64 {
        let id = derive_span_id(self.node, self.next_span);
        self.next_span += 1;
        id
    }

    fn find_pending(&self, id: RequestId) -> Option<usize> {
        self.pending.iter().position(|(k, _)| *k == id)
    }

    /// Opens a pending span for a request this node forwarded onward.
    /// Returns the span id to use as the outgoing frame's
    /// `parent_span`, or `None` when the pending table is full (the
    /// span is counted as dropped).
    pub fn begin(
        &mut self,
        id: RequestId,
        ctx: TraceContext,
        object: u64,
        kind: SegmentKind,
        now_us: u64,
    ) -> Option<u64> {
        let span_id = self.alloc_span();
        let entry = PendingSpan {
            ctx,
            span_id,
            start_us: now_us,
            object,
            kind,
        };
        if let Some(i) = self.find_pending(id) {
            // A loop revisit: the earlier hop's span is folded into the
            // revisit rather than recorded half-open.
            self.pending[i].1 = entry;
        } else if self.pending.len() >= MAX_PENDING {
            self.overflow_dropped += 1;
            return None;
        } else {
            self.pending.push((id, entry));
        }
        Some(span_id)
    }

    /// Closes the pending span a returning reply matches, records it,
    /// and returns the context for the backwarded reply frame: this
    /// node's span as the parent, the original hop count preserved.
    /// `None` when no span was pending (untraced or evicted flow).
    pub fn finish(&mut self, id: RequestId, now_us: u64) -> Option<TraceContext> {
        let i = self.find_pending(id)?;
        let (_, p) = self.pending.swap_remove(i);
        self.ring.record(NetSpan {
            trace_id: p.ctx.trace_id,
            span_id: p.span_id,
            parent_span: p.ctx.parent_span,
            node: self.node,
            kind: p.kind,
            start_us: p.start_us,
            dur_us: now_us.saturating_sub(p.start_us),
            object: p.object,
            hop: p.ctx.hop,
        });
        Some(TraceContext {
            trace_id: p.ctx.trace_id,
            parent_span: p.span_id,
            hop: p.ctx.hop,
        })
    }

    /// Records a closed leaf span (a local hit, an origin serve, a
    /// client's end-to-end wait) and returns its span id.
    pub fn record_leaf(
        &mut self,
        ctx: TraceContext,
        object: u64,
        kind: SegmentKind,
        start_us: u64,
        end_us: u64,
    ) -> u64 {
        let span_id = self.alloc_span();
        self.ring.record(NetSpan {
            trace_id: ctx.trace_id,
            span_id,
            parent_span: ctx.parent_span,
            node: self.node,
            kind,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            object,
            hop: ctx.hop,
        });
        span_id
    }

    /// Spans lost over the node's lifetime: ring overwrites plus
    /// pending-table overflow. Monotone — this is what
    /// `adc_net_trace_dropped_total` exposes.
    pub fn dropped_total(&self) -> u64 {
        self.ring.dropped() + self.overflow_dropped
    }

    /// Lifetime counters for metric rendering.
    pub fn counters(&self) -> TraceCounters {
        TraceCounters {
            recorded: self.ring.recorded() + self.overflow_dropped,
            dropped: self.dropped_total(),
        }
    }

    /// Flows currently awaiting their reply.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Read access to the ring, for flight-recorder dumps.
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Drains the ring for an in-band trace scrape: the held spans as
    /// JSONL plus the cumulative drop counter.
    pub fn scrape(&mut self) -> (u64, String) {
        let spans = self.ring.drain_ordered();
        (
            self.dropped_total(),
            adc_obs::netspan::net_spans_to_jsonl(&spans),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::ClientId;

    fn ctx(trace: u64) -> TraceContext {
        TraceContext {
            trace_id: trace,
            parent_span: 11,
            hop: 2,
        }
    }

    fn id(seq: u64) -> RequestId {
        RequestId::new(ClientId::new(1), seq)
    }

    #[test]
    fn begin_finish_records_one_span_with_parent_linkage() {
        let mut t = NodeTracer::new(4, 16);
        let span_id = t
            .begin(id(0), ctx(77), 42, SegmentKind::ForwardHop, 100)
            .unwrap();
        assert_eq!(t.pending_len(), 1);
        let reply_ctx = t.finish(id(0), 350).expect("pending span closes");
        assert_eq!(t.pending_len(), 0);
        assert_eq!(reply_ctx.trace_id, 77);
        assert_eq!(reply_ctx.parent_span, span_id);
        assert_eq!(reply_ctx.hop, 2);
        let spans: Vec<_> = t.ring().iter_ordered().copied().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span_id, span_id);
        assert_eq!(spans[0].parent_span, 11, "nests under the sender's span");
        assert_eq!(spans[0].start_us, 100);
        assert_eq!(spans[0].dur_us, 250);
        assert_eq!(spans[0].node, 4);
        assert_eq!(spans[0].kind, SegmentKind::ForwardHop);
    }

    #[test]
    fn finish_without_begin_is_none() {
        let mut t = NodeTracer::new(0, 16);
        assert!(t.finish(id(9), 10).is_none());
        assert!(t.ring().is_empty());
    }

    #[test]
    fn loop_revisit_overwrites_the_pending_entry() {
        let mut t = NodeTracer::new(0, 16);
        t.begin(id(0), ctx(1), 42, SegmentKind::ForwardHop, 100);
        let second = t
            .begin(id(0), ctx(1), 42, SegmentKind::OriginFetch, 300)
            .unwrap();
        assert_eq!(t.pending_len(), 1, "one open span per flow");
        let reply_ctx = t.finish(id(0), 400).unwrap();
        assert_eq!(reply_ctx.parent_span, second);
        let spans: Vec<_> = t.ring().iter_ordered().copied().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SegmentKind::OriginFetch);
        assert_eq!(spans[0].start_us, 300);
    }

    #[test]
    fn pending_overflow_counts_as_dropped() {
        let mut t = NodeTracer::new(0, 4);
        for seq in 0..(MAX_PENDING as u64 + 5) {
            t.begin(id(seq), ctx(1), 0, SegmentKind::ForwardHop, 0);
        }
        assert_eq!(t.pending_len(), MAX_PENDING);
        assert_eq!(t.dropped_total(), 5);
        assert_eq!(t.counters().dropped, 5);
    }

    #[test]
    fn scrape_drains_but_keeps_cumulative_drops() {
        let mut t = NodeTracer::new(0, 2);
        for i in 0..5u64 {
            t.record_leaf(ctx(1), i, SegmentKind::ReplyReturn, i * 10, i * 10 + 3);
        }
        let (dropped, jsonl) = t.scrape();
        assert_eq!(dropped, 3, "ring of 2 dropped three of five");
        assert_eq!(jsonl.lines().count(), 2);
        let (dropped_again, empty) = t.scrape();
        assert_eq!(dropped_again, 3, "cumulative across scrapes");
        assert!(empty.is_empty());
    }
}
