//! The wire protocol: length-prefixed binary frames.
//!
//! Each frame is `u32` big-endian payload length followed by the payload.
//! Payloads carry a [`Request`], a [`Reply`] plus (for replies) the
//! object body bytes, or a metrics scrape exchange: an empty
//! [`Frame::MetricsRequest`] answered in-band with a
//! [`Frame::MetricsResponse`] carrying Prometheus exposition text.
//! Encoding is fixed-width big-endian throughout — no self-describing
//! format, no versioning games.

use adc_core::{ClientId, NodeId, ObjectId, ProxyId, Reply, Request, RequestId, ServedFrom};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum accepted frame payload (object bodies are ≤ 1 MiB in the
/// default size model; this leaves generous headroom).
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_METRICS_REQUEST: u8 = 3;
const TAG_METRICS_RESPONSE: u8 = 4;

const NODE_CLIENT: u8 = 0;
const NODE_PROXY: u8 = 1;
const NODE_ORIGIN: u8 = 2;

/// A decoded frame: a message plus (for replies) the object body, or a
/// metrics scrape exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A request on its way toward a resolver.
    Request(Request),
    /// A reply with the object body attached.
    Reply(Reply, Bytes),
    /// Asks the receiving node for its metric families; answered in-band
    /// on the same connection with a [`Frame::MetricsResponse`].
    MetricsRequest,
    /// Prometheus text-exposition payload (UTF-8) answering a
    /// [`Frame::MetricsRequest`].
    MetricsResponse(Bytes),
}

impl Frame {
    /// The destination-independent request ID; `None` for the metrics
    /// scrape frames, which belong to no flow.
    pub fn request_id(&self) -> Option<RequestId> {
        match self {
            Frame::Request(r) => Some(r.id),
            Frame::Reply(r, _) => Some(r.id),
            Frame::MetricsRequest | Frame::MetricsResponse(_) => None,
        }
    }
}

/// A protocol decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the message was complete.
    Truncated,
    /// An unknown message or node tag.
    BadTag(u8),
    /// Frame length exceeded [`MAX_FRAME`].
    Oversized(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtocolError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn put_node(buf: &mut BytesMut, node: NodeId) {
    match node {
        NodeId::Client(c) => {
            buf.put_u8(NODE_CLIENT);
            buf.put_u32(c.raw());
        }
        NodeId::Proxy(p) => {
            buf.put_u8(NODE_PROXY);
            buf.put_u32(p.raw());
        }
        NodeId::Origin => {
            buf.put_u8(NODE_ORIGIN);
            buf.put_u32(0);
        }
    }
}

fn get_node(buf: &mut Bytes) -> Result<NodeId, ProtocolError> {
    if buf.remaining() < 5 {
        return Err(ProtocolError::Truncated);
    }
    let tag = buf.get_u8();
    let raw = buf.get_u32();
    match tag {
        NODE_CLIENT => Ok(NodeId::Client(ClientId::new(raw))),
        NODE_PROXY => Ok(NodeId::Proxy(ProxyId::new(raw))),
        NODE_ORIGIN => Ok(NodeId::Origin),
        other => Err(ProtocolError::BadTag(other)),
    }
}

fn put_opt_proxy(buf: &mut BytesMut, p: Option<ProxyId>) {
    buf.put_u32(p.map(|p| p.raw()).unwrap_or(u32::MAX));
}

fn get_opt_proxy(buf: &mut Bytes) -> Result<Option<ProxyId>, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Truncated);
    }
    let raw = buf.get_u32();
    Ok((raw != u32::MAX).then_some(ProxyId::new(raw)))
}

/// Encodes a frame payload (without the length prefix).
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match frame {
        Frame::Request(r) => {
            buf.put_u8(TAG_REQUEST);
            buf.put_u32(r.id.client.raw());
            buf.put_u64(r.id.seq);
            buf.put_u64(r.object.raw());
            buf.put_u32(r.client.raw());
            put_node(&mut buf, r.sender);
            buf.put_u32(r.hops);
        }
        Frame::Reply(r, body) => {
            buf.put_u8(TAG_REPLY);
            buf.put_u32(r.id.client.raw());
            buf.put_u64(r.id.seq);
            buf.put_u64(r.object.raw());
            buf.put_u32(r.client.raw());
            put_opt_proxy(&mut buf, r.resolver);
            put_opt_proxy(&mut buf, r.cached_by);
            match r.served_from {
                ServedFrom::Origin => {
                    buf.put_u8(0);
                    buf.put_u32(0);
                }
                ServedFrom::Cache(p) => {
                    buf.put_u8(1);
                    buf.put_u32(p.raw());
                }
            }
            buf.put_u32(r.size);
            buf.put_u32(body.len() as u32);
            buf.put_slice(body);
        }
        Frame::MetricsRequest => {
            buf.put_u8(TAG_METRICS_REQUEST);
        }
        Frame::MetricsResponse(text) => {
            buf.put_u8(TAG_METRICS_RESPONSE);
            buf.put_u32(text.len() as u32);
            buf.put_slice(text);
        }
    }
    buf.freeze()
}

/// Decodes a frame payload produced by [`encode`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] on truncated or malformed input.
pub fn decode(mut buf: Bytes) -> Result<Frame, ProtocolError> {
    if buf.remaining() < 1 {
        return Err(ProtocolError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_REQUEST => {
            if buf.remaining() < 4 + 8 + 8 + 4 {
                return Err(ProtocolError::Truncated);
            }
            let id_client = ClientId::new(buf.get_u32());
            let seq = buf.get_u64();
            let object = ObjectId::new(buf.get_u64());
            let client = ClientId::new(buf.get_u32());
            let sender = get_node(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(ProtocolError::Truncated);
            }
            let hops = buf.get_u32();
            Ok(Frame::Request(Request {
                id: RequestId::new(id_client, seq),
                object,
                client,
                sender,
                hops,
            }))
        }
        TAG_REPLY => {
            if buf.remaining() < 4 + 8 + 8 + 4 {
                return Err(ProtocolError::Truncated);
            }
            let id_client = ClientId::new(buf.get_u32());
            let seq = buf.get_u64();
            let object = ObjectId::new(buf.get_u64());
            let client = ClientId::new(buf.get_u32());
            let resolver = get_opt_proxy(&mut buf)?;
            let cached_by = get_opt_proxy(&mut buf)?;
            if buf.remaining() < 5 {
                return Err(ProtocolError::Truncated);
            }
            let served_tag = buf.get_u8();
            let served_raw = buf.get_u32();
            let served_from = match served_tag {
                0 => ServedFrom::Origin,
                1 => ServedFrom::Cache(ProxyId::new(served_raw)),
                other => return Err(ProtocolError::BadTag(other)),
            };
            if buf.remaining() < 8 {
                return Err(ProtocolError::Truncated);
            }
            let size = buf.get_u32();
            let body_len = buf.get_u32() as usize;
            if body_len > MAX_FRAME || buf.remaining() < body_len {
                return Err(ProtocolError::Truncated);
            }
            let body = buf.split_to(body_len);
            Ok(Frame::Reply(
                Reply {
                    id: RequestId::new(id_client, seq),
                    object,
                    client,
                    resolver,
                    cached_by,
                    served_from,
                    size,
                },
                body,
            ))
        }
        TAG_METRICS_REQUEST => Ok(Frame::MetricsRequest),
        TAG_METRICS_RESPONSE => {
            if buf.remaining() < 4 {
                return Err(ProtocolError::Truncated);
            }
            let text_len = buf.get_u32() as usize;
            if text_len > MAX_FRAME || buf.remaining() < text_len {
                return Err(ProtocolError::Truncated);
            }
            let text = buf.split_to(text_len);
            Ok(Frame::MetricsResponse(text))
        }
        other => Err(ProtocolError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request {
            id: RequestId::new(ClientId::new(3), 99),
            object: ObjectId::new(0xdead_beef),
            client: ClientId::new(3),
            sender: NodeId::Proxy(ProxyId::new(2)),
            hops: 5,
        }
    }

    fn reply() -> Reply {
        Reply {
            id: RequestId::new(ClientId::new(3), 99),
            object: ObjectId::new(0xdead_beef),
            client: ClientId::new(3),
            resolver: Some(ProxyId::new(1)),
            cached_by: None,
            served_from: ServedFrom::Cache(ProxyId::new(1)),
            size: 4,
        }
    }

    #[test]
    fn request_round_trip() {
        let f = Frame::Request(request());
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn reply_round_trip_with_body() {
        let f = Frame::Reply(reply(), Bytes::from_static(b"data"));
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn reply_round_trip_from_origin() {
        let mut r = reply();
        r.resolver = None;
        r.cached_by = None;
        r.served_from = ServedFrom::Origin;
        let f = Frame::Reply(r, Bytes::new());
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn all_sender_kinds_round_trip() {
        for sender in [
            NodeId::Client(ClientId::new(7)),
            NodeId::Proxy(ProxyId::new(8)),
            NodeId::Origin,
        ] {
            let mut r = request();
            r.sender = sender;
            let f = Frame::Request(r);
            assert_eq!(decode(encode(&f)).unwrap(), f);
        }
    }

    #[test]
    fn truncated_inputs_error() {
        let full = encode(&Frame::Reply(reply(), Bytes::from_static(b"data")));
        for cut in 0..full.len() {
            let partial = full.slice(0..cut);
            assert!(
                decode(partial).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let buf = Bytes::from_static(&[42, 0, 0, 0]);
        assert_eq!(decode(buf), Err(ProtocolError::BadTag(42)));
    }

    #[test]
    fn frame_request_id_accessor() {
        let id = RequestId::new(ClientId::new(3), 99);
        assert_eq!(Frame::Request(request()).request_id(), Some(id));
        assert_eq!(Frame::Reply(reply(), Bytes::new()).request_id(), Some(id));
        assert_eq!(Frame::MetricsRequest.request_id(), None);
        assert_eq!(Frame::MetricsResponse(Bytes::new()).request_id(), None);
    }

    #[test]
    fn metrics_frames_round_trip() {
        let f = Frame::MetricsRequest;
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f =
            Frame::MetricsResponse(Bytes::from_static(b"adc_local_hits_total{proxy=\"0\"} 1\n"));
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f = Frame::MetricsResponse(Bytes::new());
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn truncated_metrics_response_errors() {
        let full = encode(&Frame::MetricsResponse(Bytes::from_static(b"metric 1\n")));
        for cut in 0..full.len() {
            assert!(
                decode(full.slice(0..cut)).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }
}
