//! The wire protocol: length-prefixed binary frames.
//!
//! Each frame is `u32` big-endian payload length followed by the payload.
//! Payloads carry a [`Request`], a [`Reply`] plus (for replies) the
//! object body bytes, or one of two in-band scrape exchanges: an empty
//! [`Frame::MetricsRequest`] answered with a [`Frame::MetricsResponse`]
//! carrying Prometheus exposition text, and an empty
//! [`Frame::TraceRequest`] answered with a [`Frame::TraceResponse`]
//! draining the node's span ring as JSONL.
//! Encoding is fixed-width big-endian throughout — no self-describing
//! format, no versioning games.
//!
//! # Trace context
//!
//! Request and reply frames optionally carry a [`TraceContext`]
//! (trace id + parent span id + hop count). A context-free frame
//! encodes under the original tags 1/2 — byte-identical to the
//! pre-tracing protocol — while a traced frame uses the dedicated tags
//! 5/6 with the context prepended to the unchanged message layout, so
//! tracing-off clusters interoperate with (and are indistinguishable
//! from) old peers on the wire.

use adc_core::{ClientId, NodeId, ObjectId, ProxyId, Reply, Request, RequestId, ServedFrom};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum accepted frame payload (object bodies are ≤ 1 MiB in the
/// default size model; this leaves generous headroom).
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_METRICS_REQUEST: u8 = 3;
const TAG_METRICS_RESPONSE: u8 = 4;
const TAG_TRACED_REQUEST: u8 = 5;
const TAG_TRACED_REPLY: u8 = 6;
const TAG_TRACE_REQUEST: u8 = 7;
const TAG_TRACE_RESPONSE: u8 = 8;

const NODE_CLIENT: u8 = 0;
const NODE_PROXY: u8 = 1;
const NODE_ORIGIN: u8 = 2;

/// Trace context carried alongside a request/reply flow on the wire.
///
/// Minted at the client that issues the root request and propagated by
/// every node the flow touches; each forwarding hop replaces
/// `parent_span` with its own span id and bumps `hop`, so the receiver
/// can nest its span under the sender's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The flow's trace id, constant across all hops.
    pub trace_id: u64,
    /// Span id of the sending node's open span; `0` when the sender
    /// recorded none.
    pub parent_span: u64,
    /// Forwarding hops taken so far (0 at the client).
    pub hop: u32,
}

/// Payload of a [`Frame::TraceResponse`]: the node's span ring drained
/// as JSONL plus the clock sample the merger aligns timelines with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceScrape {
    /// The node's monotonic clock (microseconds since its spawn) read
    /// while answering the scrape — pairs with the collector-side
    /// send/receive timestamps for offset estimation.
    pub node_now_us: u64,
    /// Spans lost to ring overwrites over the node's lifetime.
    pub dropped: u64,
    /// The drained spans as JSON Lines (UTF-8).
    pub spans: Bytes,
}

/// A decoded frame: a message plus (for replies) the object body, or an
/// in-band scrape exchange (metrics or trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A request on its way toward a resolver, with optional trace
    /// context.
    Request(Request, Option<TraceContext>),
    /// A reply with the object body attached, with optional trace
    /// context.
    Reply(Reply, Bytes, Option<TraceContext>),
    /// Asks the receiving node for its metric families; answered in-band
    /// on the same connection with a [`Frame::MetricsResponse`].
    MetricsRequest,
    /// Prometheus text-exposition payload (UTF-8) answering a
    /// [`Frame::MetricsRequest`].
    MetricsResponse(Bytes),
    /// Asks the receiving node to drain its span ring; answered in-band
    /// with a [`Frame::TraceResponse`].
    TraceRequest,
    /// The drained span ring answering a [`Frame::TraceRequest`].
    TraceResponse(TraceScrape),
}

impl Frame {
    /// The destination-independent request ID; `None` for the scrape
    /// frames, which belong to no flow.
    pub fn request_id(&self) -> Option<RequestId> {
        match self {
            Frame::Request(r, _) => Some(r.id),
            Frame::Reply(r, _, _) => Some(r.id),
            Frame::MetricsRequest
            | Frame::MetricsResponse(_)
            | Frame::TraceRequest
            | Frame::TraceResponse(_) => None,
        }
    }

    /// The trace context carried by a request/reply frame, if any.
    pub fn trace_context(&self) -> Option<TraceContext> {
        match self {
            Frame::Request(_, ctx) | Frame::Reply(_, _, ctx) => *ctx,
            _ => None,
        }
    }
}

/// A protocol decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the message was complete.
    Truncated,
    /// An unknown message or node tag.
    BadTag(u8),
    /// Frame length exceeded [`MAX_FRAME`].
    Oversized(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtocolError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn put_node(buf: &mut BytesMut, node: NodeId) {
    match node {
        NodeId::Client(c) => {
            buf.put_u8(NODE_CLIENT);
            buf.put_u32(c.raw());
        }
        NodeId::Proxy(p) => {
            buf.put_u8(NODE_PROXY);
            buf.put_u32(p.raw());
        }
        NodeId::Origin => {
            buf.put_u8(NODE_ORIGIN);
            buf.put_u32(0);
        }
    }
}

fn get_node(buf: &mut Bytes) -> Result<NodeId, ProtocolError> {
    if buf.remaining() < 5 {
        return Err(ProtocolError::Truncated);
    }
    let tag = buf.get_u8();
    let raw = buf.get_u32();
    match tag {
        NODE_CLIENT => Ok(NodeId::Client(ClientId::new(raw))),
        NODE_PROXY => Ok(NodeId::Proxy(ProxyId::new(raw))),
        NODE_ORIGIN => Ok(NodeId::Origin),
        other => Err(ProtocolError::BadTag(other)),
    }
}

fn put_opt_proxy(buf: &mut BytesMut, p: Option<ProxyId>) {
    buf.put_u32(p.map(|p| p.raw()).unwrap_or(u32::MAX));
}

fn get_opt_proxy(buf: &mut Bytes) -> Result<Option<ProxyId>, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Truncated);
    }
    let raw = buf.get_u32();
    Ok((raw != u32::MAX).then_some(ProxyId::new(raw)))
}

fn put_trace_context(buf: &mut BytesMut, ctx: &TraceContext) {
    buf.put_u64(ctx.trace_id);
    buf.put_u64(ctx.parent_span);
    buf.put_u32(ctx.hop);
}

fn get_trace_context(buf: &mut Bytes) -> Result<TraceContext, ProtocolError> {
    if buf.remaining() < 8 + 8 + 4 {
        return Err(ProtocolError::Truncated);
    }
    Ok(TraceContext {
        trace_id: buf.get_u64(),
        parent_span: buf.get_u64(),
        hop: buf.get_u32(),
    })
}

fn put_request(buf: &mut BytesMut, r: &Request) {
    buf.put_u32(r.id.client.raw());
    buf.put_u64(r.id.seq);
    buf.put_u64(r.object.raw());
    buf.put_u32(r.client.raw());
    put_node(buf, r.sender);
    buf.put_u32(r.hops);
}

fn put_reply(buf: &mut BytesMut, r: &Reply, body: &Bytes) {
    buf.put_u32(r.id.client.raw());
    buf.put_u64(r.id.seq);
    buf.put_u64(r.object.raw());
    buf.put_u32(r.client.raw());
    put_opt_proxy(buf, r.resolver);
    put_opt_proxy(buf, r.cached_by);
    match r.served_from {
        ServedFrom::Origin => {
            buf.put_u8(0);
            buf.put_u32(0);
        }
        ServedFrom::Cache(p) => {
            buf.put_u8(1);
            buf.put_u32(p.raw());
        }
    }
    buf.put_u32(r.size);
    buf.put_u32(body.len() as u32);
    buf.put_slice(body);
}

/// Encodes a frame payload (without the length prefix).
///
/// A [`Frame::Request`]/[`Frame::Reply`] without a trace context
/// encodes under the original tags — byte-for-byte what the pre-tracing
/// protocol produced; a context selects the traced tag and prepends the
/// context to the otherwise unchanged layout.
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match frame {
        Frame::Request(r, ctx) => {
            match ctx {
                None => buf.put_u8(TAG_REQUEST),
                Some(ctx) => {
                    buf.put_u8(TAG_TRACED_REQUEST);
                    put_trace_context(&mut buf, ctx);
                }
            }
            put_request(&mut buf, r);
        }
        Frame::Reply(r, body, ctx) => {
            match ctx {
                None => buf.put_u8(TAG_REPLY),
                Some(ctx) => {
                    buf.put_u8(TAG_TRACED_REPLY);
                    put_trace_context(&mut buf, ctx);
                }
            }
            put_reply(&mut buf, r, body);
        }
        Frame::MetricsRequest => {
            buf.put_u8(TAG_METRICS_REQUEST);
        }
        Frame::MetricsResponse(text) => {
            buf.put_u8(TAG_METRICS_RESPONSE);
            buf.put_u32(text.len() as u32);
            buf.put_slice(text);
        }
        Frame::TraceRequest => {
            buf.put_u8(TAG_TRACE_REQUEST);
        }
        Frame::TraceResponse(scrape) => {
            buf.put_u8(TAG_TRACE_RESPONSE);
            buf.put_u64(scrape.node_now_us);
            buf.put_u64(scrape.dropped);
            buf.put_u32(scrape.spans.len() as u32);
            buf.put_slice(&scrape.spans);
        }
    }
    buf.freeze()
}

/// Decodes a frame payload produced by [`encode`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] on truncated or malformed input.
pub fn decode(mut buf: Bytes) -> Result<Frame, ProtocolError> {
    if buf.remaining() < 1 {
        return Err(ProtocolError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_REQUEST => Ok(Frame::Request(get_request(&mut buf)?, None)),
        TAG_TRACED_REQUEST => {
            let ctx = get_trace_context(&mut buf)?;
            Ok(Frame::Request(get_request(&mut buf)?, Some(ctx)))
        }
        TAG_REPLY => {
            let (reply, body) = get_reply(&mut buf)?;
            Ok(Frame::Reply(reply, body, None))
        }
        TAG_TRACED_REPLY => {
            let ctx = get_trace_context(&mut buf)?;
            let (reply, body) = get_reply(&mut buf)?;
            Ok(Frame::Reply(reply, body, Some(ctx)))
        }
        TAG_METRICS_REQUEST => Ok(Frame::MetricsRequest),
        TAG_METRICS_RESPONSE => {
            if buf.remaining() < 4 {
                return Err(ProtocolError::Truncated);
            }
            let text_len = buf.get_u32() as usize;
            if text_len > MAX_FRAME || buf.remaining() < text_len {
                return Err(ProtocolError::Truncated);
            }
            let text = buf.split_to(text_len);
            Ok(Frame::MetricsResponse(text))
        }
        TAG_TRACE_REQUEST => Ok(Frame::TraceRequest),
        TAG_TRACE_RESPONSE => {
            if buf.remaining() < 8 + 8 + 4 {
                return Err(ProtocolError::Truncated);
            }
            let node_now_us = buf.get_u64();
            let dropped = buf.get_u64();
            let spans_len = buf.get_u32() as usize;
            if spans_len > MAX_FRAME || buf.remaining() < spans_len {
                return Err(ProtocolError::Truncated);
            }
            let spans = buf.split_to(spans_len);
            Ok(Frame::TraceResponse(TraceScrape {
                node_now_us,
                dropped,
                spans,
            }))
        }
        other => Err(ProtocolError::BadTag(other)),
    }
}

fn get_request(buf: &mut Bytes) -> Result<Request, ProtocolError> {
    if buf.remaining() < 4 + 8 + 8 + 4 {
        return Err(ProtocolError::Truncated);
    }
    let id_client = ClientId::new(buf.get_u32());
    let seq = buf.get_u64();
    let object = ObjectId::new(buf.get_u64());
    let client = ClientId::new(buf.get_u32());
    let sender = get_node(buf)?;
    if buf.remaining() < 4 {
        return Err(ProtocolError::Truncated);
    }
    let hops = buf.get_u32();
    Ok(Request {
        id: RequestId::new(id_client, seq),
        object,
        client,
        sender,
        hops,
    })
}

fn get_reply(buf: &mut Bytes) -> Result<(Reply, Bytes), ProtocolError> {
    if buf.remaining() < 4 + 8 + 8 + 4 {
        return Err(ProtocolError::Truncated);
    }
    let id_client = ClientId::new(buf.get_u32());
    let seq = buf.get_u64();
    let object = ObjectId::new(buf.get_u64());
    let client = ClientId::new(buf.get_u32());
    let resolver = get_opt_proxy(buf)?;
    let cached_by = get_opt_proxy(buf)?;
    if buf.remaining() < 5 {
        return Err(ProtocolError::Truncated);
    }
    let served_tag = buf.get_u8();
    let served_raw = buf.get_u32();
    let served_from = match served_tag {
        0 => ServedFrom::Origin,
        1 => ServedFrom::Cache(ProxyId::new(served_raw)),
        other => return Err(ProtocolError::BadTag(other)),
    };
    if buf.remaining() < 8 {
        return Err(ProtocolError::Truncated);
    }
    let size = buf.get_u32();
    let body_len = buf.get_u32() as usize;
    if body_len > MAX_FRAME || buf.remaining() < body_len {
        return Err(ProtocolError::Truncated);
    }
    let body = buf.split_to(body_len);
    Ok((
        Reply {
            id: RequestId::new(id_client, seq),
            object,
            client,
            resolver,
            cached_by,
            served_from,
            size,
        },
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request {
            id: RequestId::new(ClientId::new(3), 99),
            object: ObjectId::new(0xdead_beef),
            client: ClientId::new(3),
            sender: NodeId::Proxy(ProxyId::new(2)),
            hops: 5,
        }
    }

    fn reply() -> Reply {
        Reply {
            id: RequestId::new(ClientId::new(3), 99),
            object: ObjectId::new(0xdead_beef),
            client: ClientId::new(3),
            resolver: Some(ProxyId::new(1)),
            cached_by: None,
            served_from: ServedFrom::Cache(ProxyId::new(1)),
            size: 4,
        }
    }

    fn ctx() -> TraceContext {
        TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            parent_span: 0x99aa_bbcc_ddee_ff00,
            hop: 3,
        }
    }

    #[test]
    fn request_round_trip() {
        let f = Frame::Request(request(), None);
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn reply_round_trip_with_body() {
        let f = Frame::Reply(reply(), Bytes::from_static(b"data"), None);
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn reply_round_trip_from_origin() {
        let mut r = reply();
        r.resolver = None;
        r.cached_by = None;
        r.served_from = ServedFrom::Origin;
        let f = Frame::Reply(r, Bytes::new(), None);
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn all_sender_kinds_round_trip() {
        for sender in [
            NodeId::Client(ClientId::new(7)),
            NodeId::Proxy(ProxyId::new(8)),
            NodeId::Origin,
        ] {
            let mut r = request();
            r.sender = sender;
            let f = Frame::Request(r, None);
            assert_eq!(decode(encode(&f)).unwrap(), f);
        }
    }

    #[test]
    fn traced_frames_round_trip() {
        let f = Frame::Request(request(), Some(ctx()));
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f = Frame::Reply(reply(), Bytes::from_static(b"data"), Some(ctx()));
        assert_eq!(decode(encode(&f)).unwrap(), f);
        assert_eq!(f.trace_context(), Some(ctx()));
    }

    #[test]
    fn trace_scrape_round_trips() {
        let f = Frame::TraceRequest;
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f = Frame::TraceResponse(TraceScrape {
            node_now_us: 123_456,
            dropped: 7,
            spans: Bytes::from_static(b"{\"trace\":1}\n{\"trace\":2}\n"),
        });
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f = Frame::TraceResponse(TraceScrape {
            node_now_us: 0,
            dropped: 0,
            spans: Bytes::new(),
        });
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    /// With tracing off the encoder must produce the exact pre-tracing
    /// bytes — this pins the untraced layout field by field, so any
    /// accidental re-layout (or a context leaking into tag 1/2 frames)
    /// fails here before it breaks cross-version interop.
    #[test]
    fn untraced_encoding_is_byte_identical_to_pre_tracing_layout() {
        let mut expect = BytesMut::new();
        expect.put_u8(1); // TAG_REQUEST
        expect.put_u32(3); // id.client
        expect.put_u64(99); // id.seq
        expect.put_u64(0xdead_beef); // object
        expect.put_u32(3); // client
        expect.put_u8(1); // NODE_PROXY
        expect.put_u32(2); // sender proxy id
        expect.put_u32(5); // hops
        assert_eq!(encode(&Frame::Request(request(), None)), expect.freeze());

        let mut expect = BytesMut::new();
        expect.put_u8(2); // TAG_REPLY
        expect.put_u32(3); // id.client
        expect.put_u64(99); // id.seq
        expect.put_u64(0xdead_beef); // object
        expect.put_u32(3); // client
        expect.put_u32(1); // resolver = Some(1)
        expect.put_u32(u32::MAX); // cached_by = None
        expect.put_u8(1); // served from cache
        expect.put_u32(1); // cache proxy id
        expect.put_u32(4); // size
        expect.put_u32(4); // body length
        expect.put_slice(b"data");
        assert_eq!(
            encode(&Frame::Reply(reply(), Bytes::from_static(b"data"), None)),
            expect.freeze()
        );
    }

    /// A traced frame is the untraced layout with the 20-byte context
    /// between the tag and the message — nothing else moves.
    #[test]
    fn traced_encoding_prepends_context_to_unchanged_layout() {
        let untraced = encode(&Frame::Request(request(), None));
        let traced = encode(&Frame::Request(request(), Some(ctx())));
        assert_eq!(traced.len(), untraced.len() + 20);
        assert_eq!(traced[0], TAG_TRACED_REQUEST);
        assert_eq!(&traced[21..], &untraced[1..]);

        let untraced = encode(&Frame::Reply(reply(), Bytes::from_static(b"xy"), None));
        let traced = encode(&Frame::Reply(
            reply(),
            Bytes::from_static(b"xy"),
            Some(ctx()),
        ));
        assert_eq!(traced.len(), untraced.len() + 20);
        assert_eq!(traced[0], TAG_TRACED_REPLY);
        assert_eq!(&traced[21..], &untraced[1..]);
    }

    #[test]
    fn truncated_inputs_error() {
        let full = encode(&Frame::Reply(reply(), Bytes::from_static(b"data"), None));
        for cut in 0..full.len() {
            let partial = full.slice(0..cut);
            assert!(
                decode(partial).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn truncated_traced_frames_error() {
        for frame in [
            Frame::Request(request(), Some(ctx())),
            Frame::Reply(reply(), Bytes::from_static(b"data"), Some(ctx())),
            Frame::TraceResponse(TraceScrape {
                node_now_us: 9,
                dropped: 2,
                spans: Bytes::from_static(b"{}\n"),
            }),
        ] {
            let full = encode(&frame);
            for cut in 0..full.len() {
                assert!(
                    decode(full.slice(0..cut)).is_err(),
                    "decode of {cut}-byte prefix should fail"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let buf = Bytes::from_static(&[42, 0, 0, 0]);
        assert_eq!(decode(buf), Err(ProtocolError::BadTag(42)));
    }

    #[test]
    fn frame_request_id_accessor() {
        let id = RequestId::new(ClientId::new(3), 99);
        assert_eq!(Frame::Request(request(), None).request_id(), Some(id));
        assert_eq!(
            Frame::Reply(reply(), Bytes::new(), Some(ctx())).request_id(),
            Some(id)
        );
        assert_eq!(Frame::MetricsRequest.request_id(), None);
        assert_eq!(Frame::MetricsResponse(Bytes::new()).request_id(), None);
        assert_eq!(Frame::TraceRequest.request_id(), None);
        let scrape = TraceScrape {
            node_now_us: 0,
            dropped: 0,
            spans: Bytes::new(),
        };
        assert_eq!(Frame::TraceResponse(scrape).request_id(), None);
    }

    #[test]
    fn metrics_frames_round_trip() {
        let f = Frame::MetricsRequest;
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f =
            Frame::MetricsResponse(Bytes::from_static(b"adc_local_hits_total{proxy=\"0\"} 1\n"));
        assert_eq!(decode(encode(&f)).unwrap(), f);
        let f = Frame::MetricsResponse(Bytes::new());
        assert_eq!(decode(encode(&f)).unwrap(), f);
    }

    #[test]
    fn truncated_metrics_response_errors() {
        let full = encode(&Frame::MetricsResponse(Bytes::from_static(b"metric 1\n")));
        for cut in 0..full.len() {
            assert!(
                decode(full.slice(0..cut)).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }
}
