//! The address book mapping logical node IDs to socket addresses.

use adc_core::{ClientId, NodeId, ProxyId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;

/// Maps [`NodeId`]s to the socket addresses where they listen.
///
/// Proxy and origin addresses are fixed at cluster start; clients register
/// themselves as they join.
#[derive(Debug)]
pub struct AddressBook {
    proxies: Vec<SocketAddr>,
    origin: SocketAddr,
    clients: RwLock<HashMap<u32, SocketAddr>>,
}

impl AddressBook {
    /// Creates a book over the given proxy addresses and origin address.
    pub fn new(proxies: Vec<SocketAddr>, origin: SocketAddr) -> Self {
        AddressBook {
            proxies,
            origin,
            clients: RwLock::new(HashMap::new()),
        }
    }

    /// Number of proxies.
    pub fn num_proxies(&self) -> u32 {
        self.proxies.len() as u32
    }

    /// Registers (or re-registers) a client's listen address.
    pub fn register_client(&self, client: ClientId, addr: SocketAddr) {
        self.clients.write().insert(client.raw(), addr);
    }

    /// Resolves a node to its socket address.
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        match node {
            NodeId::Proxy(p) => self.proxies.get(p.raw() as usize).copied(),
            NodeId::Origin => Some(self.origin),
            NodeId::Client(c) => self.clients.read().get(&c.raw()).copied(),
        }
    }

    /// The address of proxy `p`.
    pub fn proxy_addr(&self, p: ProxyId) -> Option<SocketAddr> {
        self.proxies.get(p.raw() as usize).copied()
    }

    /// The origin server's address.
    pub fn origin_addr(&self) -> SocketAddr {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn resolves_all_node_kinds() {
        let book = AddressBook::new(vec![addr(1000), addr(1001)], addr(2000));
        assert_eq!(
            book.addr_of(NodeId::Proxy(ProxyId::new(1))),
            Some(addr(1001))
        );
        assert_eq!(book.addr_of(NodeId::Origin), Some(addr(2000)));
        assert_eq!(book.addr_of(NodeId::Proxy(ProxyId::new(9))), None);
        assert_eq!(book.addr_of(NodeId::Client(ClientId::new(5))), None);
        book.register_client(ClientId::new(5), addr(3000));
        assert_eq!(
            book.addr_of(NodeId::Client(ClientId::new(5))),
            Some(addr(3000))
        );
        assert_eq!(book.num_proxies(), 2);
        assert_eq!(book.origin_addr(), addr(2000));
    }
}
