//! Framed TCP transport: length-prefixed frames and a lazy connection
//! pool.

use crate::protocol::{decode, encode, Frame, MAX_FRAME};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};
use tokio::net::TcpStream;
use tokio::sync::{mpsc, Mutex};

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub async fn write_frame<W: AsyncWrite + Unpin>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = encode(frame);
    w.write_u32(payload.len() as u32).await?;
    w.write_all(&payload).await?;
    w.flush().await
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` for oversized or malformed frames, otherwise
/// propagates I/O errors.
pub async fn read_frame<R: AsyncRead + Unpin>(r: &mut R) -> io::Result<Option<Frame>> {
    let len = match r.read_u32().await {
        Ok(len) => len as usize,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    };
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).await?;
    decode(buf.into())
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A lazy pool of outbound connections: one writer task per destination,
/// created on first use, recreated on failure.
#[derive(Debug, Default)]
pub struct Pool {
    senders: Mutex<HashMap<SocketAddr, mpsc::Sender<Frame>>>,
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool::default()
    }

    /// Sends `frame` to `addr`, connecting if necessary. One reconnect is
    /// attempted when a pooled connection has gone away.
    ///
    /// # Errors
    ///
    /// Returns the connection error when (re)connecting fails.
    pub async fn send(&self, addr: SocketAddr, frame: Frame) -> io::Result<()> {
        let mut frame = frame;
        for attempt in 0..2 {
            let sender = self.sender_for(addr, attempt > 0).await?;
            match sender.send(frame).await {
                Ok(()) => return Ok(()),
                Err(back) => {
                    // Writer task died (connection closed); retry fresh.
                    frame = back.0;
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!("connection to {addr} keeps failing"),
        ))
    }

    async fn sender_for(
        &self,
        addr: SocketAddr,
        force_new: bool,
    ) -> io::Result<mpsc::Sender<Frame>> {
        let mut senders = self.senders.lock().await;
        if !force_new {
            if let Some(s) = senders.get(&addr) {
                if !s.is_closed() {
                    return Ok(s.clone());
                }
            }
        }
        let stream = TcpStream::connect(addr).await?;
        let (tx, mut rx) = mpsc::channel::<Frame>(256);
        tokio::spawn(async move {
            let mut stream = stream;
            while let Some(frame) = rx.recv().await {
                if write_frame(&mut stream, &frame).await.is_err() {
                    break;
                }
            }
        });
        senders.insert(addr, tx.clone());
        Ok(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{ClientId, ObjectId, Request, RequestId};
    use tokio::net::TcpListener;

    fn frame(seq: u64) -> Frame {
        Frame::Request(
            Request::new(
                RequestId::new(ClientId::new(1), seq),
                ObjectId::new(42),
                ClientId::new(1),
            ),
            None,
        )
    }

    #[tokio::test]
    async fn frame_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (mut stream, _) = listener.accept().await.unwrap();
            let mut got = Vec::new();
            while let Some(f) = read_frame(&mut stream).await.unwrap() {
                got.push(f);
            }
            got
        });
        let mut client = TcpStream::connect(addr).await.unwrap();
        write_frame(&mut client, &frame(1)).await.unwrap();
        write_frame(&mut client, &frame(2)).await.unwrap();
        drop(client);
        let got = server.await.unwrap();
        assert_eq!(got, vec![frame(1), frame(2)]);
    }

    #[tokio::test]
    async fn pool_reuses_and_reconnects() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let (count_tx, mut count_rx) = mpsc::channel::<Frame>(64);
        tokio::spawn(async move {
            loop {
                let (mut stream, _) = listener.accept().await.unwrap();
                let tx = count_tx.clone();
                tokio::spawn(async move {
                    while let Ok(Some(f)) = read_frame(&mut stream).await {
                        tx.send(f).await.ok();
                    }
                });
            }
        });
        let pool = Pool::new();
        pool.send(addr, frame(1)).await.unwrap();
        pool.send(addr, frame(2)).await.unwrap();
        assert_eq!(count_rx.recv().await.unwrap(), frame(1));
        assert_eq!(count_rx.recv().await.unwrap(), frame(2));
    }

    #[tokio::test]
    async fn pool_errors_on_unreachable() {
        let pool = Pool::new();
        // Port 1 on localhost is almost certainly closed.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(pool.send(addr, frame(1)).await.is_err());
    }

    #[tokio::test]
    async fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (mut stream, _) = listener.accept().await.unwrap();
            read_frame(&mut stream).await
        });
        let mut client = TcpStream::connect(addr).await.unwrap();
        client.write_u32(u32::MAX).await.unwrap();
        client.flush().await.unwrap();
        let result = server.await.unwrap();
        assert!(result.is_err());
    }
}
