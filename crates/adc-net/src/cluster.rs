//! One-call assembly of a full ADC (or baseline) deployment on
//! localhost: origin server, N proxy nodes, and clients on demand.

use crate::book::AddressBook;
use crate::client::NetClient;
use crate::node::{OriginNode, ProxyNode};
use adc_baselines::CarpProxy;
use adc_core::{AdcConfig, AdcProxy, CacheAgent, ClientId, ProxyId, ProxyStats};
use std::io;
use std::sync::Arc;
use tokio::net::TcpListener;

/// A running localhost cluster.
///
/// Dropping the cluster aborts all node tasks.
#[derive(Debug)]
pub struct Cluster<A> {
    /// Shared node address book.
    pub book: Arc<AddressBook>,
    /// The proxy nodes, indexed by proxy ID.
    pub proxies: Vec<ProxyNode<A>>,
    _origin: OriginNode,
}

impl<A: CacheAgent + Send + 'static> Cluster<A> {
    /// Spawns an origin server and one proxy node per agent, all on
    /// ephemeral localhost ports.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub async fn spawn_with_agents(agents: Vec<A>) -> io::Result<Cluster<A>> {
        assert!(!agents.is_empty(), "need at least one proxy agent");
        let origin_listener = TcpListener::bind("127.0.0.1:0").await?;
        let origin_addr = origin_listener.local_addr()?;
        let mut proxy_listeners = Vec::with_capacity(agents.len());
        let mut proxy_addrs = Vec::with_capacity(agents.len());
        for _ in &agents {
            let l = TcpListener::bind("127.0.0.1:0").await?;
            proxy_addrs.push(l.local_addr()?);
            proxy_listeners.push(l);
        }
        let book = Arc::new(AddressBook::new(proxy_addrs, origin_addr));
        let origin = OriginNode::spawn(origin_listener, Arc::clone(&book));
        let proxies = agents
            .into_iter()
            .zip(proxy_listeners)
            .enumerate()
            .map(|(i, (agent, listener))| {
                ProxyNode::spawn(agent, listener, Arc::clone(&book), 0xADC0 + i as u64)
            })
            .collect();
        Ok(Cluster {
            book,
            proxies,
            _origin: origin,
        })
    }

    /// Starts a client attached to this cluster.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn client(&self, id: ClientId) -> io::Result<NetClient> {
        NetClient::start(id, Arc::clone(&self.book)).await
    }

    /// Number of proxies.
    pub fn num_proxies(&self) -> u32 {
        self.proxies.len() as u32
    }

    /// Snapshot of one proxy's counters.
    pub fn proxy_stats(&self, p: ProxyId) -> ProxyStats {
        *self.proxies[p.raw() as usize].agent.lock().stats()
    }

    /// Scrapes proxy `p`'s Prometheus text exposition over the wire.
    ///
    /// # Errors
    ///
    /// Returns `NotFound` for an unknown proxy, otherwise the errors of
    /// [`crate::client::scrape_metrics`].
    pub async fn metrics_text(&self, p: ProxyId) -> io::Result<String> {
        let addr = self
            .book
            .proxy_addr(p)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {p}")))?;
        crate::client::scrape_metrics(addr).await
    }

    /// Scrapes the origin server's Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`crate::client::scrape_metrics`].
    pub async fn origin_metrics_text(&self) -> io::Result<String> {
        crate::client::scrape_metrics(self.book.origin_addr()).await
    }

    /// Cluster-wide counters.
    pub fn cluster_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for node in &self.proxies {
            total.merge(node.agent.lock().stats());
        }
        total
    }
}

impl Cluster<CarpProxy> {
    /// Spawns `n` CARP hashing proxies with per-proxy LRU caches.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn spawn_carp(n: u32, cache_capacity: usize) -> io::Result<Cluster<CarpProxy>> {
        let agents = (0..n)
            .map(|i| CarpProxy::new(ProxyId::new(i), n, cache_capacity))
            .collect();
        Self::spawn_with_agents(agents).await
    }
}

impl Cluster<AdcProxy> {
    /// Spawns `n` ADC proxies with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn spawn_adc(n: u32, config: AdcConfig) -> io::Result<Cluster<AdcProxy>> {
        let agents = (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect();
        Self::spawn_with_agents(agents).await
    }
}
