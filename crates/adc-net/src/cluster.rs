//! One-call assembly of a full ADC (or baseline) deployment on
//! localhost: origin server, N proxy nodes, and clients on demand.

use crate::book::AddressBook;
use crate::client::{NetClient, TraceScrapeResult};
use crate::flight::FlightRecorder;
use crate::node::{OriginNode, ProxyNode};
use crate::trace::NodeTracer;
use adc_baselines::CarpProxy;
use adc_core::{AdcConfig, AdcProxy, CacheAgent, ClientId, NullProbe, ProxyId, ProxyStats};
use adc_obs::netspan::ORIGIN_LANE;
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;
use std::time::Instant;
use tokio::net::{TcpListener, TcpStream};

/// Optional subsystems a cluster can be spawned with.
#[derive(Debug, Default, Clone)]
pub struct ClusterOptions {
    /// When `Some(capacity)`, every node (proxies and origin) records
    /// live spans into a ring of this many slots and answers in-band
    /// trace scrapes.
    pub trace_capacity: Option<usize>,
    /// When present, nodes dump a post-mortem on panic and the traced
    /// driver dumps peers it declares dead.
    pub flight: Option<Arc<FlightRecorder>>,
}

/// A running localhost cluster.
///
/// Dropping the cluster aborts all node tasks.
#[derive(Debug)]
pub struct Cluster<A> {
    /// Shared node address book.
    pub book: Arc<AddressBook>,
    /// The proxy nodes, indexed by proxy ID.
    pub proxies: Vec<ProxyNode<A>>,
    /// The origin server.
    pub origin: OriginNode,
    /// The instant all node clocks are compared against by
    /// [`Cluster::collect_traces`]. Each node still stamps spans on its
    /// own epoch; this one anchors the scrape-time offset estimates.
    pub epoch: Instant,
    traced: bool,
}

impl<A: CacheAgent + Send + 'static> Cluster<A> {
    /// Spawns an origin server and one proxy node per agent, all on
    /// ephemeral localhost ports. Tracing off, no flight recorder.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub async fn spawn_with_agents(agents: Vec<A>) -> io::Result<Cluster<A>> {
        Self::spawn_with_agents_opts(agents, ClusterOptions::default()).await
    }

    /// Spawns a cluster with explicit [`ClusterOptions`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub async fn spawn_with_agents_opts(
        agents: Vec<A>,
        options: ClusterOptions,
    ) -> io::Result<Cluster<A>> {
        assert!(!agents.is_empty(), "need at least one proxy agent");
        let origin_listener = TcpListener::bind("127.0.0.1:0").await?;
        let origin_addr = origin_listener.local_addr()?;
        let mut proxy_listeners = Vec::with_capacity(agents.len());
        let mut proxy_addrs = Vec::with_capacity(agents.len());
        for _ in &agents {
            let l = TcpListener::bind("127.0.0.1:0").await?;
            proxy_addrs.push(l.local_addr()?);
            proxy_listeners.push(l);
        }
        let book = Arc::new(AddressBook::new(proxy_addrs, origin_addr));
        let tracer_for = |lane: u32| {
            options
                .trace_capacity
                .map(|cap| Arc::new(Mutex::new(NodeTracer::new(lane, cap))))
        };
        let origin =
            OriginNode::spawn_full(origin_listener, Arc::clone(&book), tracer_for(ORIGIN_LANE));
        let proxies = agents
            .into_iter()
            .zip(proxy_listeners)
            .enumerate()
            .map(|(i, (agent, listener))| {
                ProxyNode::spawn_full(
                    agent,
                    listener,
                    Arc::clone(&book),
                    0xADC0 + i as u64,
                    Arc::new(Mutex::new(NullProbe)),
                    tracer_for(i as u32),
                    options.flight.clone(),
                )
            })
            .collect();
        Ok(Cluster {
            book,
            proxies,
            origin,
            epoch: Instant::now(),
            traced: options.trace_capacity.is_some(),
        })
    }

    /// Whether the cluster's nodes record live spans.
    pub fn is_traced(&self) -> bool {
        self.traced
    }

    /// Starts a client attached to this cluster. When the cluster is
    /// traced, so is the client: requests carry a context and root
    /// `client_wait` spans are recorded client-side.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn client(&self, id: ClientId) -> io::Result<NetClient> {
        if self.traced {
            // The ring is per-client, so a modest default holds a full
            // scrape interval of root spans.
            NetClient::start_traced(id, Arc::clone(&self.book), 4096).await
        } else {
            NetClient::start(id, Arc::clone(&self.book)).await
        }
    }

    /// Number of proxies.
    pub fn num_proxies(&self) -> u32 {
        self.proxies.len() as u32
    }

    /// Snapshot of one proxy's counters.
    pub fn proxy_stats(&self, p: ProxyId) -> ProxyStats {
        *self.proxies[p.raw() as usize].agent.lock().stats()
    }

    /// Scrapes proxy `p`'s Prometheus text exposition over the wire.
    ///
    /// # Errors
    ///
    /// Returns `NotFound` for an unknown proxy, otherwise the errors of
    /// [`crate::client::scrape_metrics`].
    pub async fn metrics_text(&self, p: ProxyId) -> io::Result<String> {
        let addr = self
            .book
            .proxy_addr(p)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {p}")))?;
        crate::client::scrape_metrics(addr).await
    }

    /// Scrapes the origin server's Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`crate::client::scrape_metrics`].
    pub async fn origin_metrics_text(&self) -> io::Result<String> {
        crate::client::scrape_metrics(self.book.origin_addr()).await
    }

    /// Drains every live node's span ring over the wire and returns the
    /// concatenated JSON Lines — a quick textual view; use
    /// [`Cluster::collect_traces`] for the clock-aligned merge inputs.
    ///
    /// # Errors
    ///
    /// Propagates scrape errors from live proxies (dead ones are
    /// skipped).
    pub async fn trace_text(&self) -> io::Result<String> {
        let mut out = String::new();
        for (name, scrape) in self.collect_traces().await? {
            let _ = name; // lanes flattened in the text view
            out.push_str(&scrape.jsonl);
        }
        Ok(out)
    }

    /// Scrapes every live node's span ring, labelling each scrape with
    /// its lane name (`proxy-<p>`, `origin`). Collector clock samples
    /// are relative to [`Cluster::epoch`]. Dead proxies are skipped —
    /// their rings are only reachable via the flight recorder.
    ///
    /// # Errors
    ///
    /// Propagates scrape errors from live nodes.
    pub async fn collect_traces(&self) -> io::Result<Vec<(String, TraceScrapeResult)>> {
        let mut out = Vec::with_capacity(self.proxies.len() + 1);
        for (i, node) in self.proxies.iter().enumerate() {
            if !node.is_alive() {
                continue;
            }
            let p = ProxyId::new(i as u32);
            let addr = self.book.proxy_addr(p).expect("own proxy is in the book");
            let scrape = crate::client::scrape_trace(addr, self.epoch).await?;
            out.push((format!("proxy-{i}"), scrape));
        }
        let scrape = crate::client::scrape_trace(self.book.origin_addr(), self.epoch).await?;
        out.push(("origin".to_string(), scrape));
        Ok(out)
    }

    /// Kills proxy `p`: marks it dead and pokes its listener so the
    /// blocked accept observes the flag. In-flight requests through it
    /// will time out, which is what the traced driver's peer-death
    /// detection keys on.
    pub async fn kill_proxy(&self, p: ProxyId) {
        let node = &self.proxies[p.raw() as usize];
        node.kill();
        if let Some(addr) = self.book.proxy_addr(p) {
            // Wake-up connection: the accept returns, sees !alive, and
            // the node's accept loop exits.
            let _ = TcpStream::connect(addr).await;
        }
    }

    /// Cluster-wide counters.
    pub fn cluster_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for node in &self.proxies {
            total.merge(node.agent.lock().stats());
        }
        total
    }
}

impl Cluster<CarpProxy> {
    /// Spawns `n` CARP hashing proxies with per-proxy LRU caches.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn spawn_carp(n: u32, cache_capacity: usize) -> io::Result<Cluster<CarpProxy>> {
        let agents = (0..n)
            .map(|i| CarpProxy::new(ProxyId::new(i), n, cache_capacity))
            .collect();
        Self::spawn_with_agents(agents).await
    }
}

impl Cluster<AdcProxy> {
    /// Spawns `n` ADC proxies with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn spawn_adc(n: u32, config: AdcConfig) -> io::Result<Cluster<AdcProxy>> {
        let agents = (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect();
        Self::spawn_with_agents(agents).await
    }

    /// Spawns `n` ADC proxies with live tracing on: every node records
    /// spans into a ring of `trace_capacity` and answers in-band trace
    /// scrapes.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn spawn_adc_traced(
        n: u32,
        config: AdcConfig,
        trace_capacity: usize,
    ) -> io::Result<Cluster<AdcProxy>> {
        let agents = (0..n)
            .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
            .collect();
        Self::spawn_with_agents_opts(
            agents,
            ClusterOptions {
                trace_capacity: Some(trace_capacity),
                flight: None,
            },
        )
        .await
    }
}
