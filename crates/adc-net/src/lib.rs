//! # adc-net
//!
//! A tokio TCP runtime for the ADC system — the paper's future-work item
//! of "the creation of a real proxy system".
//!
//! The same sans-IO agents that run under the deterministic simulator
//! ([`adc_core::AdcProxy`], the baselines in `adc-baselines`) are wrapped
//! in socket plumbing here: a length-prefixed binary [`protocol`], a lazy
//! outbound connection [`transport::Pool`], proxy/origin nodes and a
//! request/reply [`NetClient`]. Object bodies are real bytes, generated
//! deterministically by the origin so end-to-end integrity is checkable.
//!
//! # Examples
//!
//! ```no_run
//! use adc_core::{AdcConfig, ClientId, ObjectId, ProxyId};
//! use adc_net::Cluster;
//!
//! # async fn demo() -> std::io::Result<()> {
//! let cluster = Cluster::spawn_adc(5, AdcConfig::default()).await?;
//! let client = cluster.client(ClientId::new(0)).await?;
//! let (reply, body) = client
//!     .request(ObjectId::from_url("http://example.com/"), ProxyId::new(2))
//!     .await?;
//! assert_eq!(reply.size as usize, body.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod book;
mod client;
mod cluster;
mod driver;
mod flight;
mod node;
pub mod protocol;
mod trace;
pub mod transport;

pub use book::AddressBook;
pub use client::{scrape_metrics, scrape_trace, NetClient, TraceScrapeResult};
pub use cluster::{Cluster, ClusterOptions};
pub use driver::{drive_workload, drive_workload_traced, DriveReport, TracedDriveReport};
pub use flight::FlightRecorder;
pub use node::{origin_body, render_node_metrics, OriginNode, ProxyNode};
pub use trace::{NodeTracer, TraceCounters};
