//! A TCP client that issues requests to the proxy cluster and awaits the
//! matching replies.

use crate::book::AddressBook;
use crate::protocol::{Frame, TraceContext};
use crate::trace::NodeTracer;
use crate::transport::{read_frame, write_frame, Pool};
use adc_core::{ClientId, ObjectId, ProxyId, Reply, Request, RequestId};
use adc_obs::netspan::{derive_trace_id, CLIENT_LANE};
use adc_obs::SegmentKind;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::TcpListener;
use tokio::net::TcpStream;
use tokio::sync::oneshot;
use tokio::task::JoinHandle;

/// Scrapes the Prometheus text exposition from the node listening at
/// `addr` by sending a [`Frame::MetricsRequest`] and reading the
/// in-band response on the same connection.
///
/// # Errors
///
/// Returns `UnexpectedEof` if the node closes the connection without
/// answering, `InvalidData` when the response is not a metrics frame or
/// is not valid UTF-8, or any underlying socket error.
pub async fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr).await?;
    write_frame(&mut stream, &Frame::MetricsRequest).await?;
    let frame = read_frame(&mut stream)
        .await?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "node closed during scrape"))?;
    let Frame::MetricsResponse(body) = frame else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a metrics response frame",
        ));
    };
    String::from_utf8(body.to_vec())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad UTF-8: {e}")))
}

/// One node's trace scrape, annotated with the collector-side clock
/// samples the merger estimates the node's clock offset from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceScrapeResult {
    /// The node's clock (microseconds since its spawn) read while it
    /// answered.
    pub node_now_us: u64,
    /// Spans the node lost over its lifetime.
    pub dropped: u64,
    /// The drained spans as JSON Lines.
    pub jsonl: String,
    /// Collector clock (microseconds since `epoch`) just before the
    /// scrape request was written.
    pub sent_us: u64,
    /// Collector clock just after the response was read.
    pub recv_us: u64,
}

/// Drains the span ring of the node listening at `addr` by sending a
/// [`Frame::TraceRequest`] and reading the in-band response, sampling
/// the collector clock (`epoch`-relative) on both sides of the exchange
/// so the caller can estimate the node's clock offset.
///
/// # Errors
///
/// Returns `UnexpectedEof` if the node closes the connection without
/// answering, `InvalidData` when the response is not a trace frame or
/// its spans are not valid UTF-8, or any underlying socket error.
pub async fn scrape_trace(addr: SocketAddr, epoch: Instant) -> io::Result<TraceScrapeResult> {
    let mut stream = TcpStream::connect(addr).await?;
    let sent_us = epoch.elapsed().as_micros() as u64;
    write_frame(&mut stream, &Frame::TraceRequest).await?;
    let frame = read_frame(&mut stream)
        .await?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "node closed during scrape"))?;
    let recv_us = epoch.elapsed().as_micros() as u64;
    let Frame::TraceResponse(scrape) = frame else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a trace response frame",
        ));
    };
    let jsonl = String::from_utf8(scrape.spans.to_vec())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad UTF-8: {e}")))?;
    Ok(TraceScrapeResult {
        node_now_us: scrape.node_now_us,
        dropped: scrape.dropped,
        jsonl,
        sent_us,
        recv_us,
    })
}

/// Outstanding requests awaiting replies.
type PendingReplies = Arc<Mutex<HashMap<RequestId, oneshot::Sender<(Reply, Bytes)>>>>;

/// A client endpoint: registers itself in the address book, sends
/// requests, and matches replies by request ID.
///
/// With tracing enabled ([`NetClient::start_traced`]) every request
/// carries a [`TraceContext`] minted here, and its end-to-end wait is
/// recorded as a root `client_wait` span in the client's own ring
/// (lane [`CLIENT_LANE`]) — timed-out requests included.
#[derive(Debug)]
pub struct NetClient {
    id: ClientId,
    book: Arc<AddressBook>,
    pool: Pool,
    seq: AtomicU64,
    pending: PendingReplies,
    tracer: Option<Arc<Mutex<NodeTracer>>>,
    epoch: Instant,
    handle: JoinHandle<()>,
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl NetClient {
    /// Binds a listener, registers this client in `book`, and starts the
    /// reply dispatcher. Requests are untraced.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn start(id: ClientId, book: Arc<AddressBook>) -> io::Result<NetClient> {
        Self::start_inner(id, book, None).await
    }

    /// Like [`NetClient::start`] but with tracing on: requests carry a
    /// trace context and root spans land in a ring of `span_capacity`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn start_traced(
        id: ClientId,
        book: Arc<AddressBook>,
        span_capacity: usize,
    ) -> io::Result<NetClient> {
        let tracer = Arc::new(Mutex::new(NodeTracer::new(CLIENT_LANE, span_capacity)));
        Self::start_inner(id, book, Some(tracer)).await
    }

    async fn start_inner(
        id: ClientId,
        book: Arc<AddressBook>,
        tracer: Option<Arc<Mutex<NodeTracer>>>,
    ) -> io::Result<NetClient> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        book.register_client(id, listener.local_addr()?);
        let pending: PendingReplies = Arc::new(Mutex::new(HashMap::new()));
        let pending_for_task = Arc::clone(&pending);
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let pending = Arc::clone(&pending_for_task);
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        if let Frame::Reply(reply, body, _) = frame {
                            if let Some(tx) = pending.lock().remove(&reply.id) {
                                tx.send((reply, body)).ok();
                            }
                        }
                    }
                });
            }
        });
        Ok(NetClient {
            id,
            book,
            pool: Pool::new(),
            seq: AtomicU64::new(0),
            pending,
            tracer,
            epoch: Instant::now(),
            handle,
        })
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The client's span ring, when tracing is enabled. Spans are on
    /// the clock of [`NetClient::epoch`].
    pub fn tracer(&self) -> Option<&Arc<Mutex<NodeTracer>>> {
        self.tracer.as_ref()
    }

    /// The instant the client's span clock counts from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Mints the root trace context for request `seq`, when tracing.
    fn root_ctx(&self, seq: u64) -> Option<TraceContext> {
        self.tracer.as_ref().map(|_| TraceContext {
            trace_id: derive_trace_id(self.id.raw(), seq),
            parent_span: 0,
            hop: 0,
        })
    }

    /// Records the root `client_wait` span for a finished (or timed
    /// out) traced request.
    fn record_root_span(&self, ctx: Option<TraceContext>, object: ObjectId, start_us: u64) {
        if let (Some(tracer), Some(ctx)) = (&self.tracer, ctx) {
            tracer.lock().record_leaf(
                ctx,
                object.raw(),
                SegmentKind::ClientWait,
                start_us,
                self.now_us(),
            );
        }
    }

    /// Requests `object` via proxy `via` and awaits the reply with the
    /// object body.
    ///
    /// # Errors
    ///
    /// Returns `NotFound` for an unknown proxy, `BrokenPipe` when the
    /// reply channel is dropped, or any underlying socket error.
    pub async fn request(&self, object: ObjectId, via: ProxyId) -> io::Result<(Reply, Bytes)> {
        let addr = self.book.proxy_addr(via).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {via}"))
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = RequestId::new(self.id, seq);
        let ctx = self.root_ctx(seq);
        let start_us = self.now_us();
        let (tx, rx) = oneshot::channel();
        self.pending.lock().insert(id, tx);
        let request = Request::new(id, object, self.id);
        self.pool.send(addr, Frame::Request(request, ctx)).await?;
        let result = rx
            .await
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "reply channel dropped"));
        if result.is_ok() {
            self.record_root_span(ctx, object, start_us);
        }
        result
    }

    /// Like [`NetClient::request`] but gives up after `timeout`,
    /// cleaning up the pending slot.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` when no reply arrives in time, otherwise the
    /// same errors as [`NetClient::request`].
    pub async fn request_timeout(
        &self,
        object: ObjectId,
        via: ProxyId,
        timeout: Duration,
    ) -> io::Result<(Reply, Bytes)> {
        let addr = self.book.proxy_addr(via).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {via}"))
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = RequestId::new(self.id, seq);
        let ctx = self.root_ctx(seq);
        let start_us = self.now_us();
        let (tx, rx) = oneshot::channel();
        self.pending.lock().insert(id, tx);
        let request = Request::new(id, object, self.id);
        if let Err(e) = self.pool.send(addr, Frame::Request(request, ctx)).await {
            self.pending.lock().remove(&id);
            return Err(e);
        }
        match tokio::time::timeout(timeout, rx).await {
            Ok(Ok(result)) => {
                self.record_root_span(ctx, object, start_us);
                Ok(result)
            }
            Ok(Err(_)) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "reply channel dropped",
            )),
            Err(_) => {
                self.pending.lock().remove(&id);
                // The wait was real even though no reply came; record
                // it so merged traces show the abandoned flow.
                self.record_root_span(ctx, object, start_us);
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no reply for {object} within {timeout:?}"),
                ))
            }
        }
    }

    /// Number of requests still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }
}
