//! A TCP client that issues requests to the proxy cluster and awaits the
//! matching replies.

use crate::book::AddressBook;
use crate::protocol::Frame;
use crate::transport::{read_frame, write_frame, Pool};
use adc_core::{ClientId, ObjectId, ProxyId, Reply, Request, RequestId};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpListener;
use tokio::net::TcpStream;
use tokio::sync::oneshot;
use tokio::task::JoinHandle;

/// Scrapes the Prometheus text exposition from the node listening at
/// `addr` by sending a [`Frame::MetricsRequest`] and reading the
/// in-band response on the same connection.
///
/// # Errors
///
/// Returns `UnexpectedEof` if the node closes the connection without
/// answering, `InvalidData` when the response is not a metrics frame or
/// is not valid UTF-8, or any underlying socket error.
pub async fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr).await?;
    write_frame(&mut stream, &Frame::MetricsRequest).await?;
    let frame = read_frame(&mut stream)
        .await?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "node closed during scrape"))?;
    let Frame::MetricsResponse(body) = frame else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a metrics response frame",
        ));
    };
    String::from_utf8(body.to_vec())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad UTF-8: {e}")))
}

/// Outstanding requests awaiting replies.
type PendingReplies = Arc<Mutex<HashMap<RequestId, oneshot::Sender<(Reply, Bytes)>>>>;

/// A client endpoint: registers itself in the address book, sends
/// requests, and matches replies by request ID.
#[derive(Debug)]
pub struct NetClient {
    id: ClientId,
    book: Arc<AddressBook>,
    pool: Pool,
    seq: AtomicU64,
    pending: PendingReplies,
    handle: JoinHandle<()>,
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl NetClient {
    /// Binds a listener, registers this client in `book`, and starts the
    /// reply dispatcher.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub async fn start(id: ClientId, book: Arc<AddressBook>) -> io::Result<NetClient> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        book.register_client(id, listener.local_addr()?);
        let pending: PendingReplies = Arc::new(Mutex::new(HashMap::new()));
        let pending_for_task = Arc::clone(&pending);
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let pending = Arc::clone(&pending_for_task);
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        if let Frame::Reply(reply, body) = frame {
                            if let Some(tx) = pending.lock().remove(&reply.id) {
                                tx.send((reply, body)).ok();
                            }
                        }
                    }
                });
            }
        });
        Ok(NetClient {
            id,
            book,
            pool: Pool::new(),
            seq: AtomicU64::new(0),
            pending,
            handle,
        })
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Requests `object` via proxy `via` and awaits the reply with the
    /// object body.
    ///
    /// # Errors
    ///
    /// Returns `NotFound` for an unknown proxy, `BrokenPipe` when the
    /// reply channel is dropped, or any underlying socket error.
    pub async fn request(&self, object: ObjectId, via: ProxyId) -> io::Result<(Reply, Bytes)> {
        let addr = self.book.proxy_addr(via).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {via}"))
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = RequestId::new(self.id, seq);
        let (tx, rx) = oneshot::channel();
        self.pending.lock().insert(id, tx);
        let request = Request::new(id, object, self.id);
        self.pool.send(addr, Frame::Request(request)).await?;
        rx.await
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "reply channel dropped"))
    }

    /// Like [`NetClient::request`] but gives up after `timeout`,
    /// cleaning up the pending slot.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` when no reply arrives in time, otherwise the
    /// same errors as [`NetClient::request`].
    pub async fn request_timeout(
        &self,
        object: ObjectId,
        via: ProxyId,
        timeout: Duration,
    ) -> io::Result<(Reply, Bytes)> {
        let addr = self.book.proxy_addr(via).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such proxy {via}"))
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = RequestId::new(self.id, seq);
        let (tx, rx) = oneshot::channel();
        self.pending.lock().insert(id, tx);
        let request = Request::new(id, object, self.id);
        if let Err(e) = self.pool.send(addr, Frame::Request(request)).await {
            self.pending.lock().remove(&id);
            return Err(e);
        }
        match tokio::time::timeout(timeout, rx).await {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(_)) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "reply channel dropped",
            )),
            Err(_) => {
                self.pending.lock().remove(&id);
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no reply for {object} within {timeout:?}"),
                ))
            }
        }
    }

    /// Number of requests still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }
}
