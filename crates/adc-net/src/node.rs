//! The proxy and origin server nodes.

use crate::book::AddressBook;
use crate::flight::FlightRecorder;
use crate::protocol::{Frame, TraceContext, TraceScrape};
use crate::trace::{NodeTracer, TraceCounters};
use crate::transport::{read_frame, write_frame, Pool};
use adc_core::{
    Action, ActionSink, CacheAgent, CacheEvent, Message, NodeId, NullProbe, ObjectId, Probe,
    ProxyId, ProxyStats, Reply,
};
use adc_metrics::Registry;
use adc_obs::metrics as families;
use adc_obs::SegmentKind;
use adc_workload::SizeModel;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::net::TcpListener;
use tokio::task::JoinHandle;

/// Metric families only the network layer emits — counters with no
/// simulator-side equivalent in [`adc_obs::metrics`]. Kept as consts so
/// `adc-lint`'s metric-name agreement check can hold every exposition
/// site and test to one spelling.
pub mod net_families {
    /// Requests a proxy accepted off the wire (client or peer).
    pub const REQUESTS_RECEIVED: &str = "adc_requests_received_total";
    /// Replies a proxy matched to a pending request and processed.
    pub const REPLIES_PROCESSED: &str = "adc_replies_processed_total";
    /// Requests the origin server answered over its lifetime.
    pub const ORIGIN_REQUESTS: &str = "adc_origin_requests_total";
    /// Spans the node's tracer recorded over its lifetime (kept or
    /// dropped).
    pub const TRACE_SPANS: &str = "adc_net_trace_spans_total";
    /// Spans the node's tracer lost: ring overwrites plus
    /// pending-table overflow.
    pub const TRACE_DROPPED: &str = "adc_net_trace_dropped_total";
}

/// One outgoing transmission produced by a frame: the action, the body
/// bytes to attach to replies, and the trace context for the wire
/// frame (`None` keeps the frame on the untraced tags).
type Outgoing = (Action, Bytes, Option<TraceContext>);

/// A running proxy node: the sans-IO agent plus its socket plumbing.
#[derive(Debug)]
pub struct ProxyNode<A> {
    /// The agent, shared for post-run inspection.
    pub agent: Arc<Mutex<A>>,
    /// The byte store backing the agent's cache decisions.
    pub store: Arc<Mutex<HashMap<ObjectId, Bytes>>>,
    /// The live span recorder, present when the node was spawned with
    /// tracing enabled. Shared so flight-recorder dumps and tests can
    /// read the ring without a wire scrape.
    pub tracer: Option<Arc<Mutex<NodeTracer>>>,
    alive: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl<A> Drop for ProxyNode<A> {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl<A: CacheAgent + Send + 'static> ProxyNode<A> {
    /// Spawns a proxy node serving `listener`, forwarding through `book`.
    /// Observability is disabled ([`NullProbe`]); use
    /// [`ProxyNode::spawn_observed`] to capture events.
    pub fn spawn(agent: A, listener: TcpListener, book: Arc<AddressBook>, seed: u64) -> Self {
        Self::spawn_observed(agent, listener, book, seed, Arc::new(Mutex::new(NullProbe)))
    }

    /// Spawns a proxy node that feeds every agent event through `probe`.
    /// Event timestamps are microseconds since the node was spawned
    /// (wall clock, unlike the simulator's virtual clock). The probe is
    /// shared so callers can drain or export it after the run.
    pub fn spawn_observed<P: Probe + Send + 'static>(
        agent: A,
        listener: TcpListener,
        book: Arc<AddressBook>,
        seed: u64,
        probe: Arc<Mutex<P>>,
    ) -> Self {
        Self::spawn_full(agent, listener, book, seed, probe, None, None)
    }

    /// Spawns a proxy node with the full option set: an event probe, an
    /// optional live tracer (recording spans for traced frames and
    /// answering in-band [`Frame::TraceRequest`] scrapes) and an
    /// optional flight recorder (post-mortem dump if the frame handler
    /// panics).
    pub fn spawn_full<P: Probe + Send + 'static>(
        agent: A,
        listener: TcpListener,
        book: Arc<AddressBook>,
        seed: u64,
        probe: Arc<Mutex<P>>,
        tracer: Option<Arc<Mutex<NodeTracer>>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let agent = Arc::new(Mutex::new(agent));
        let store: Arc<Mutex<HashMap<ObjectId, Bytes>>> = Arc::new(Mutex::new(HashMap::new()));
        let pool = Arc::new(Pool::new());
        let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
        let alive = Arc::new(AtomicBool::new(true));
        let epoch = Instant::now();

        let agent_for_task = Arc::clone(&agent);
        let store_for_task = Arc::clone(&store);
        let tracer_for_task = tracer.clone();
        let alive_for_task = Arc::clone(&alive);
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                if !alive_for_task.load(Ordering::Relaxed) {
                    break;
                }
                let agent = Arc::clone(&agent_for_task);
                let store = Arc::clone(&store_for_task);
                let book = Arc::clone(&book);
                let pool = Arc::clone(&pool);
                let rng = Arc::clone(&rng);
                let probe = Arc::clone(&probe);
                let tracer = tracer_for_task.clone();
                let alive = Arc::clone(&alive_for_task);
                let flight = flight.clone();
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        // A killed node stops serving: in-flight
                        // connections fall silent, which is what the
                        // driver's peer-death detection watches for.
                        if !alive.load(Ordering::Relaxed) {
                            break;
                        }
                        // Scrapes (metrics and trace) are answered
                        // in-band on the same connection — they belong
                        // to no flow and never touch the address book
                        // or the pool.
                        if frame == Frame::MetricsRequest {
                            let text = {
                                let agent = agent.lock();
                                let trace = tracer.as_ref().map(|t| t.lock().counters());
                                render_node_metrics(
                                    agent.proxy_id(),
                                    agent.stats(),
                                    store.lock().len(),
                                    trace,
                                )
                            };
                            let response = Frame::MetricsResponse(Bytes::from(text.into_bytes()));
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        if frame == Frame::TraceRequest {
                            let response = answer_trace_scrape(tracer.as_deref(), &epoch);
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            handle_frame(
                                &agent,
                                &store,
                                &rng,
                                &probe,
                                tracer.as_deref(),
                                &epoch,
                                frame,
                            )
                        }));
                        let outgoing = match result {
                            Ok(outgoing) => outgoing,
                            Err(_) => {
                                // The agent panicked mid-frame: dump
                                // the evidence and take the whole node
                                // down — a half-mutated agent must not
                                // keep serving.
                                alive.store(false, Ordering::Relaxed);
                                if let Some(flight) = &flight {
                                    dump_after_panic(
                                        flight,
                                        &agent,
                                        &store,
                                        tracer.as_deref(),
                                        &epoch,
                                    );
                                }
                                break;
                            }
                        };
                        for (action, body, ctx) in outgoing {
                            let Action::Send { to, message } = action;
                            let Some(addr) = book.addr_of(to) else {
                                continue;
                            };
                            let frame = match message {
                                Message::Request(r) => Frame::Request(r, ctx),
                                Message::Reply(r) => Frame::Reply(r, body, ctx),
                            };
                            if pool.send(addr, frame).await.is_err() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        ProxyNode {
            agent,
            store,
            tracer,
            alive,
            handle,
        }
    }

    /// Number of objects whose bytes are currently stored.
    pub fn stored_objects(&self) -> usize {
        self.store.lock().len()
    }

    /// Marks the node dead: every connection loop stops serving at its
    /// next frame and new connections are refused. Existing blocked
    /// accepts need one wake-up connection — [`Cluster::kill_proxy`]
    /// [crate::Cluster::kill_proxy] handles that.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// Whether the node is still serving frames.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }
}

/// Renders a node's trace scrape response: the ring drained as JSONL
/// plus the node-clock sample the merger aligns timelines with. A node
/// without a tracer answers with an empty scrape, so sweeps never hang.
fn answer_trace_scrape(tracer: Option<&Mutex<NodeTracer>>, epoch: &Instant) -> Frame {
    let (dropped, jsonl) = match tracer {
        Some(t) => t.lock().scrape(),
        None => (0, String::new()),
    };
    Frame::TraceResponse(TraceScrape {
        node_now_us: epoch.elapsed().as_micros() as u64,
        dropped,
        spans: Bytes::from(jsonl.into_bytes()),
    })
}

/// Best-effort post-mortem dump from inside a dying connection loop.
fn dump_after_panic<A: CacheAgent>(
    flight: &FlightRecorder,
    agent: &Mutex<A>,
    store: &Mutex<HashMap<ObjectId, Bytes>>,
    tracer: Option<&Mutex<NodeTracer>>,
    epoch: &Instant,
) {
    let (proxy, metrics) = {
        let agent = agent.lock();
        let trace = tracer.map(|t| t.lock().counters());
        (
            agent.proxy_id().raw(),
            render_node_metrics(agent.proxy_id(), agent.stats(), store.lock().len(), trace),
        )
    };
    let now_us = epoch.elapsed().as_micros() as u64;
    // The node is already going down; a failed dump must not panic the
    // loop again.
    let _ = flight.dump_parts(proxy, &metrics, tracer, now_us, "panic in frame handler");
}

/// Feeds one frame through the agent and returns the transmissions plus
/// the object body to attach to outgoing replies and the trace context
/// for the wire frames.
///
/// Tracing piggybacks on the agent's decision: a request the agent
/// forwarded opens a pending [`SegmentKind::ForwardHop`] (to a peer) or
/// [`SegmentKind::OriginFetch`] (to the origin) span, a request it
/// answered locally records a closed [`SegmentKind::ReplyReturn`] leaf,
/// and a returning reply closes the pending span. Frames without a
/// context never touch the tracer, and without a tracer the incoming
/// context is propagated unchanged so downstream traced nodes keep
/// their trace-id continuity.
fn handle_frame<A: CacheAgent, P: Probe>(
    agent: &Mutex<A>,
    store: &Mutex<HashMap<ObjectId, Bytes>>,
    rng: &Mutex<StdRng>,
    probe: &Mutex<P>,
    tracer: Option<&Mutex<NodeTracer>>,
    epoch: &Instant,
    frame: Frame,
) -> Vec<Outgoing> {
    let now_us = epoch.elapsed().as_micros() as u64;
    let mut agent = agent.lock();
    let mut sink = ActionSink::new();
    match frame {
        Frame::Request(request, ctx) => {
            let object = request.object;
            let id = request.id;
            {
                let mut rng = rng.lock();
                let mut probe = probe.lock();
                probe.tick(now_us);
                agent.on_request(request, &mut *rng, &mut *probe, &mut sink);
            }
            apply_cache_events(&mut *agent, store, None);
            // A local hit replies with data from the byte store; the
            // agent only knows a nominal size, so fix it up to the real
            // body length.
            sink.drain()
                .map(|mut action| {
                    let body = match &mut action {
                        Action::Send {
                            message: Message::Reply(reply),
                            ..
                        } => {
                            let body = store.lock().get(&object).cloned().unwrap_or_default();
                            reply.size = body.len() as u32;
                            body
                        }
                        _ => Bytes::new(),
                    };
                    let out_ctx = match (ctx, tracer) {
                        (None, _) => None,
                        (Some(ctx), None) => Some(propagate(ctx, &action)),
                        (Some(ctx), Some(tracer)) => Some(trace_request_action(
                            tracer,
                            id,
                            ctx,
                            object.raw(),
                            &action,
                            now_us,
                            epoch,
                        )),
                    };
                    (action, body, out_ctx)
                })
                .collect()
        }
        Frame::Reply(reply, body, ctx) => {
            let object = reply.object;
            let id = reply.id;
            {
                let mut probe = probe.lock();
                probe.tick(now_us);
                agent.on_reply(reply, &mut *probe, &mut sink);
            }
            // The passing body is the bytes the store keeps if the agent
            // decided to cache.
            apply_cache_events(&mut *agent, store, Some((object, body.clone())));
            // Closing the pending span uses a fresh clock read so the
            // span covers the agent's reply processing too.
            let out_ctx = match tracer {
                Some(tracer) => {
                    let end_us = epoch.elapsed().as_micros() as u64;
                    tracer.lock().finish(id, end_us).or(ctx)
                }
                None => ctx,
            };
            sink.drain().map(|a| (a, body.clone(), out_ctx)).collect()
        }
        // Scrape frames are handled in-band by the connection loop and
        // never reach the agent.
        Frame::MetricsRequest
        | Frame::MetricsResponse(_)
        | Frame::TraceRequest
        | Frame::TraceResponse(_) => Vec::new(),
    }
}

/// Context for an outgoing frame at a node with no tracer: unchanged,
/// except a forwarded request syncs its hop count.
fn propagate(ctx: TraceContext, action: &Action) -> TraceContext {
    match action {
        Action::Send {
            message: Message::Request(out),
            ..
        } => TraceContext {
            hop: out.hops,
            ..ctx
        },
        _ => ctx,
    }
}

/// Records the span a traced request's outcome implies and returns the
/// outgoing frame's context, nesting the next node under this one.
fn trace_request_action(
    tracer: &Mutex<NodeTracer>,
    id: adc_core::RequestId,
    ctx: TraceContext,
    object: u64,
    action: &Action,
    arrived_us: u64,
    epoch: &Instant,
) -> TraceContext {
    let mut tracer = tracer.lock();
    match action {
        Action::Send {
            to,
            message: Message::Request(out),
        } => {
            let kind = if *to == NodeId::Origin {
                SegmentKind::OriginFetch
            } else {
                SegmentKind::ForwardHop
            };
            let span_id = tracer.begin(id, ctx, object, kind, arrived_us);
            TraceContext {
                trace_id: ctx.trace_id,
                // On pending-table overflow the span is dropped; the
                // downstream node then nests under our parent instead.
                parent_span: span_id.unwrap_or(ctx.parent_span),
                hop: out.hops,
            }
        }
        Action::Send {
            message: Message::Reply(_),
            ..
        } => {
            let end_us = epoch.elapsed().as_micros() as u64;
            let span_id =
                tracer.record_leaf(ctx, object, SegmentKind::ReplyReturn, arrived_us, end_us);
            TraceContext {
                trace_id: ctx.trace_id,
                parent_span: span_id,
                hop: ctx.hop,
            }
        }
    }
}

/// Renders one proxy node's live counters in the Prometheus text
/// exposition format: the full [`ProxyStats`] block plus a
/// stored-objects gauge, using the same family names as
/// [`adc_obs::MetricsProbe`] where the semantics coincide, so simulator
/// metrics and scraped cluster metrics line up. A tracing-enabled node
/// passes its span counters in `trace` to expose the recorded/dropped
/// totals alongside.
pub fn render_node_metrics(
    proxy: ProxyId,
    stats: &ProxyStats,
    stored_objects: usize,
    trace: Option<TraceCounters>,
) -> String {
    let p = proxy.raw();
    let mut reg = Registry::new();
    reg.counter_add(net_families::REQUESTS_RECEIVED, p, stats.requests_received);
    reg.counter_add(families::LOCAL_HITS, p, stats.local_hits);
    reg.counter_add(families::FORWARDS_LEARNED, p, stats.forwards_learned);
    reg.counter_add(families::FORWARDS_RANDOM, p, stats.forwards_random);
    reg.counter_add(families::LOOPS_DETECTED, p, stats.origin_loops);
    reg.counter_add(families::HOP_LIMIT, p, stats.origin_max_hops);
    reg.counter_add(families::ORIGIN_THIS_MISS, p, stats.origin_this_miss);
    reg.counter_add(net_families::REPLIES_PROCESSED, p, stats.replies_processed);
    reg.counter_add(families::REPLIES_ORPHANED, p, stats.replies_orphaned);
    reg.counter_add(families::CACHE_INSERTS, p, stats.cache_insertions);
    reg.counter_add(families::CACHE_EVICTS, p, stats.cache_evictions);
    reg.gauge_set(
        families::CACHED_OBJECTS,
        p,
        i64::try_from(stored_objects).unwrap_or(i64::MAX),
    );
    if let Some(trace) = trace {
        reg.counter_add(net_families::TRACE_SPANS, p, trace.recorded);
        reg.counter_add(net_families::TRACE_DROPPED, p, trace.dropped);
    }
    reg.snapshot().to_prometheus()
}

fn apply_cache_events<A: CacheAgent>(
    agent: &mut A,
    store: &Mutex<HashMap<ObjectId, Bytes>>,
    passing: Option<(ObjectId, Bytes)>,
) {
    let events = agent.drain_cache_events();
    if events.is_empty() {
        return;
    }
    let mut store = store.lock();
    for event in events {
        match event {
            CacheEvent::Store(obj) => {
                let body = match &passing {
                    Some((passing_obj, bytes)) if *passing_obj == obj => bytes.clone(),
                    // Promotion of an object whose bytes did not travel
                    // with this frame (e.g. re-ordered events): store a
                    // placeholder; it is refreshed the next time the
                    // object passes.
                    _ => Bytes::new(),
                };
                store.insert(obj, body);
            }
            CacheEvent::Evict(obj) => {
                store.remove(&obj);
            }
        }
    }
}

/// A running origin server: resolves every request with deterministic
/// pseudo-content sized by the workload's [`SizeModel`].
#[derive(Debug)]
pub struct OriginNode {
    /// The origin's span recorder, present when tracing is enabled. It
    /// records one [`SegmentKind::OriginFetch`] leaf per traced request
    /// served, so merged traces get an origin lane.
    pub tracer: Option<Arc<Mutex<NodeTracer>>>,
    handle: JoinHandle<()>,
}

impl Drop for OriginNode {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl OriginNode {
    /// Spawns the origin server on `listener`.
    pub fn spawn(listener: TcpListener, book: Arc<AddressBook>) -> Self {
        Self::spawn_full(listener, book, None)
    }

    /// Spawns the origin server with an optional span recorder (lane
    /// [`ORIGIN_LANE`][adc_obs::netspan::ORIGIN_LANE]).
    pub fn spawn_full(
        listener: TcpListener,
        book: Arc<AddressBook>,
        tracer: Option<Arc<Mutex<NodeTracer>>>,
    ) -> Self {
        let pool = Arc::new(Pool::new());
        let size_model = SizeModel::default();
        let served = Arc::new(AtomicU64::new(0));
        let epoch = Instant::now();
        let tracer_for_task = tracer.clone();
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let book = Arc::clone(&book);
                let pool = Arc::clone(&pool);
                let served = Arc::clone(&served);
                let tracer = tracer_for_task.clone();
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        // Answer scrapes so a metrics or trace sweep
                        // over every address never hangs on the origin.
                        if frame == Frame::MetricsRequest {
                            let total = served.load(Ordering::Relaxed);
                            let family = net_families::ORIGIN_REQUESTS;
                            let text = format!("# TYPE {family} counter\n{family} {total}\n");
                            let response = Frame::MetricsResponse(Bytes::from(text.into_bytes()));
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        if frame == Frame::TraceRequest {
                            let response = answer_trace_scrape(tracer.as_deref(), &epoch);
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        let Frame::Request(request, ctx) = frame else {
                            continue;
                        };
                        let arrived_us = epoch.elapsed().as_micros() as u64;
                        served.fetch_add(1, Ordering::Relaxed);
                        let body = origin_body(request.object, &size_model);
                        let reply = Reply::from_origin(&request, body.len() as u32);
                        let out_ctx = match (&tracer, ctx) {
                            (Some(tracer), Some(ctx)) => {
                                let end_us = epoch.elapsed().as_micros() as u64;
                                let span_id = tracer.lock().record_leaf(
                                    ctx,
                                    request.object.raw(),
                                    SegmentKind::OriginFetch,
                                    arrived_us,
                                    end_us,
                                );
                                Some(TraceContext {
                                    trace_id: ctx.trace_id,
                                    parent_span: span_id,
                                    hop: ctx.hop,
                                })
                            }
                            (None, ctx) => ctx,
                            (_, None) => None,
                        };
                        let Some(addr) = book.addr_of(request.sender) else {
                            continue;
                        };
                        let frame = Frame::Reply(reply, body, out_ctx);
                        if pool.send(addr, frame).await.is_err() {
                            break;
                        }
                    }
                });
            }
        });
        OriginNode { tracer, handle }
    }
}

/// Deterministic pseudo-content for an object: size from the size model,
/// bytes derived from the object ID so integrity can be checked
/// end-to-end.
pub fn origin_body(object: ObjectId, size_model: &SizeModel) -> Bytes {
    let size = size_model.size_of(object) as usize;
    let mut out = Vec::with_capacity(size);
    let mut state = object.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < size {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let chunk = state.to_le_bytes();
        let n = (size - out.len()).min(8);
        out.extend_from_slice(&chunk[..n]);
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy, ClientId, EventLog, ProxyId, Request, RequestId};

    #[test]
    fn handle_frame_feeds_events_through_the_probe() {
        let agent = Mutex::new(AdcProxy::new(ProxyId::new(0), 2, AdcConfig::default()));
        let store: Mutex<HashMap<ObjectId, Bytes>> = Mutex::new(HashMap::new());
        let rng = Mutex::new(StdRng::seed_from_u64(7));
        let probe = Mutex::new(EventLog::new());
        let epoch = Instant::now();

        let client = ClientId::new(0);
        let request = Request::new(RequestId::new(client, 0), ObjectId::new(5), client);
        let out = handle_frame(
            &agent,
            &store,
            &rng,
            &probe,
            None,
            &epoch,
            Frame::Request(request, None),
        );
        // A miss forwards exactly one message onward, context-free.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, None, "untraced request stays untraced");
        let log = probe.lock();
        // The forward decision (learned/random/this-miss) was recorded
        // with one tick's timestamp.
        assert!(!log.is_empty(), "request handling must emit events");
        let first = log.events()[0].0;
        assert!(log.events().iter().all(|&(t, _)| t == first));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn traced_request_opens_a_span_and_reply_closes_it() {
        let agent = Mutex::new(AdcProxy::new(ProxyId::new(0), 2, AdcConfig::default()));
        let store: Mutex<HashMap<ObjectId, Bytes>> = Mutex::new(HashMap::new());
        let rng = Mutex::new(StdRng::seed_from_u64(7));
        let probe = Mutex::new(EventLog::new());
        let tracer = Mutex::new(NodeTracer::new(0, 64));
        let epoch = Instant::now();

        let client = ClientId::new(0);
        let id = RequestId::new(client, 0);
        let ctx = TraceContext {
            trace_id: 42,
            parent_span: 7,
            hop: 0,
        };
        let request = Request::new(id, ObjectId::new(5), client);
        let out = handle_frame(
            &agent,
            &store,
            &rng,
            &probe,
            Some(&tracer),
            &epoch,
            Frame::Request(request, Some(ctx)),
        );
        assert_eq!(out.len(), 1, "a miss forwards one message");
        let fwd_ctx = out[0].2.expect("forwarded frame carries a context");
        assert_eq!(fwd_ctx.trace_id, 42);
        assert_ne!(fwd_ctx.parent_span, 7, "nests under this node's span");
        assert_eq!(tracer.lock().pending_len(), 1);

        // The reply comes back along the chain and closes the span.
        let reply = Reply::from_origin(&Request::new(id, ObjectId::new(5), client), 3);
        let out = handle_frame(
            &agent,
            &store,
            &rng,
            &probe,
            Some(&tracer),
            &epoch,
            Frame::Reply(reply, Bytes::from_static(b"abc"), Some(fwd_ctx)),
        );
        assert!(!out.is_empty(), "reply backwards to the waiter");
        let back_ctx = out[0].2.expect("backwarded reply keeps the trace");
        assert_eq!(back_ctx.trace_id, 42);
        assert_eq!(back_ctx.parent_span, fwd_ctx.parent_span);
        let tracer = tracer.lock();
        assert_eq!(tracer.pending_len(), 0);
        let spans: Vec<_> = tracer.ring().iter_ordered().copied().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, 42);
        assert_eq!(spans[0].parent_span, 7, "nests under the sender's span");
        assert_eq!(spans[0].object, 5);
    }

    #[test]
    fn origin_body_is_deterministic_and_sized() {
        let model = SizeModel::default();
        let a = origin_body(ObjectId::new(7), &model);
        let b = origin_body(ObjectId::new(7), &model);
        assert_eq!(a, b);
        assert_eq!(a.len() as u32, model.size_of(ObjectId::new(7)));
        let c = origin_body(ObjectId::new(8), &model);
        assert_ne!(a, c);
    }
}
