//! The proxy and origin server nodes.

use crate::book::AddressBook;
use crate::protocol::Frame;
use crate::transport::{read_frame, write_frame, Pool};
use adc_core::{
    Action, ActionSink, CacheAgent, CacheEvent, Message, NullProbe, ObjectId, Probe, ProxyId,
    ProxyStats, Reply,
};
use adc_metrics::Registry;
use adc_obs::metrics as families;
use adc_workload::SizeModel;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::net::TcpListener;
use tokio::task::JoinHandle;

/// Metric families only the network layer emits — counters with no
/// simulator-side equivalent in [`adc_obs::metrics`]. Kept as consts so
/// `adc-lint`'s metric-name agreement check can hold every exposition
/// site and test to one spelling.
pub mod net_families {
    /// Requests a proxy accepted off the wire (client or peer).
    pub const REQUESTS_RECEIVED: &str = "adc_requests_received_total";
    /// Replies a proxy matched to a pending request and processed.
    pub const REPLIES_PROCESSED: &str = "adc_replies_processed_total";
    /// Requests the origin server answered over its lifetime.
    pub const ORIGIN_REQUESTS: &str = "adc_origin_requests_total";
}

/// A running proxy node: the sans-IO agent plus its socket plumbing.
#[derive(Debug)]
pub struct ProxyNode<A> {
    /// The agent, shared for post-run inspection.
    pub agent: Arc<Mutex<A>>,
    /// The byte store backing the agent's cache decisions.
    pub store: Arc<Mutex<HashMap<ObjectId, Bytes>>>,
    handle: JoinHandle<()>,
}

impl<A> Drop for ProxyNode<A> {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl<A: CacheAgent + Send + 'static> ProxyNode<A> {
    /// Spawns a proxy node serving `listener`, forwarding through `book`.
    /// Observability is disabled ([`NullProbe`]); use
    /// [`ProxyNode::spawn_observed`] to capture events.
    pub fn spawn(agent: A, listener: TcpListener, book: Arc<AddressBook>, seed: u64) -> Self {
        Self::spawn_observed(agent, listener, book, seed, Arc::new(Mutex::new(NullProbe)))
    }

    /// Spawns a proxy node that feeds every agent event through `probe`.
    /// Event timestamps are microseconds since the node was spawned
    /// (wall clock, unlike the simulator's virtual clock). The probe is
    /// shared so callers can drain or export it after the run.
    pub fn spawn_observed<P: Probe + Send + 'static>(
        agent: A,
        listener: TcpListener,
        book: Arc<AddressBook>,
        seed: u64,
        probe: Arc<Mutex<P>>,
    ) -> Self {
        let agent = Arc::new(Mutex::new(agent));
        let store: Arc<Mutex<HashMap<ObjectId, Bytes>>> = Arc::new(Mutex::new(HashMap::new()));
        let pool = Arc::new(Pool::new());
        let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
        let epoch = Instant::now();

        let agent_for_task = Arc::clone(&agent);
        let store_for_task = Arc::clone(&store);
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let agent = Arc::clone(&agent_for_task);
                let store = Arc::clone(&store_for_task);
                let book = Arc::clone(&book);
                let pool = Arc::clone(&pool);
                let rng = Arc::clone(&rng);
                let probe = Arc::clone(&probe);
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        // Metrics scrapes are answered in-band on the
                        // same connection — they belong to no flow and
                        // never touch the address book or the pool.
                        if frame == Frame::MetricsRequest {
                            let text = {
                                let agent = agent.lock();
                                render_node_metrics(
                                    agent.proxy_id(),
                                    agent.stats(),
                                    store.lock().len(),
                                )
                            };
                            let response = Frame::MetricsResponse(Bytes::from(text.into_bytes()));
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        let now_us = epoch.elapsed().as_micros() as u64;
                        let outgoing = handle_frame(&agent, &store, &rng, &probe, now_us, frame);
                        for (action, body) in outgoing {
                            let Action::Send { to, message } = action;
                            let Some(addr) = book.addr_of(to) else {
                                continue;
                            };
                            let frame = match message {
                                Message::Request(r) => Frame::Request(r),
                                Message::Reply(r) => Frame::Reply(r, body),
                            };
                            if pool.send(addr, frame).await.is_err() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        ProxyNode {
            agent,
            store,
            handle,
        }
    }

    /// Number of objects whose bytes are currently stored.
    pub fn stored_objects(&self) -> usize {
        self.store.lock().len()
    }
}

/// Feeds one frame through the agent and returns the transmissions plus
/// the object body to attach to outgoing replies.
fn handle_frame<A: CacheAgent, P: Probe>(
    agent: &Mutex<A>,
    store: &Mutex<HashMap<ObjectId, Bytes>>,
    rng: &Mutex<StdRng>,
    probe: &Mutex<P>,
    now_us: u64,
    frame: Frame,
) -> Vec<(Action, Bytes)> {
    let mut agent = agent.lock();
    let mut sink = ActionSink::new();
    match frame {
        Frame::Request(request) => {
            let object = request.object;
            {
                let mut rng = rng.lock();
                let mut probe = probe.lock();
                probe.tick(now_us);
                agent.on_request(request, &mut *rng, &mut *probe, &mut sink);
            }
            apply_cache_events(&mut *agent, store, None);
            // A local hit replies with data from the byte store; the
            // agent only knows a nominal size, so fix it up to the real
            // body length.
            sink.drain()
                .map(|mut action| {
                    let body = match &mut action {
                        Action::Send {
                            message: Message::Reply(reply),
                            ..
                        } => {
                            let body = store.lock().get(&object).cloned().unwrap_or_default();
                            reply.size = body.len() as u32;
                            body
                        }
                        _ => Bytes::new(),
                    };
                    (action, body)
                })
                .collect()
        }
        Frame::Reply(reply, body) => {
            let object = reply.object;
            {
                let mut probe = probe.lock();
                probe.tick(now_us);
                agent.on_reply(reply, &mut *probe, &mut sink);
            }
            // The passing body is the bytes the store keeps if the agent
            // decided to cache.
            apply_cache_events(&mut *agent, store, Some((object, body.clone())));
            sink.drain().map(|a| (a, body.clone())).collect()
        }
        // Scrape frames are handled in-band by the connection loop and
        // never reach the agent.
        Frame::MetricsRequest | Frame::MetricsResponse(_) => Vec::new(),
    }
}

/// Renders one proxy node's live counters in the Prometheus text
/// exposition format: the full [`ProxyStats`] block plus a
/// stored-objects gauge, using the same family names as
/// [`adc_obs::MetricsProbe`] where the semantics coincide, so simulator
/// metrics and scraped cluster metrics line up.
pub fn render_node_metrics(proxy: ProxyId, stats: &ProxyStats, stored_objects: usize) -> String {
    let p = proxy.raw();
    let mut reg = Registry::new();
    reg.counter_add(net_families::REQUESTS_RECEIVED, p, stats.requests_received);
    reg.counter_add(families::LOCAL_HITS, p, stats.local_hits);
    reg.counter_add(families::FORWARDS_LEARNED, p, stats.forwards_learned);
    reg.counter_add(families::FORWARDS_RANDOM, p, stats.forwards_random);
    reg.counter_add(families::LOOPS_DETECTED, p, stats.origin_loops);
    reg.counter_add(families::HOP_LIMIT, p, stats.origin_max_hops);
    reg.counter_add(families::ORIGIN_THIS_MISS, p, stats.origin_this_miss);
    reg.counter_add(net_families::REPLIES_PROCESSED, p, stats.replies_processed);
    reg.counter_add(families::REPLIES_ORPHANED, p, stats.replies_orphaned);
    reg.counter_add(families::CACHE_INSERTS, p, stats.cache_insertions);
    reg.counter_add(families::CACHE_EVICTS, p, stats.cache_evictions);
    reg.gauge_set(
        families::CACHED_OBJECTS,
        p,
        i64::try_from(stored_objects).unwrap_or(i64::MAX),
    );
    reg.snapshot().to_prometheus()
}

fn apply_cache_events<A: CacheAgent>(
    agent: &mut A,
    store: &Mutex<HashMap<ObjectId, Bytes>>,
    passing: Option<(ObjectId, Bytes)>,
) {
    let events = agent.drain_cache_events();
    if events.is_empty() {
        return;
    }
    let mut store = store.lock();
    for event in events {
        match event {
            CacheEvent::Store(obj) => {
                let body = match &passing {
                    Some((passing_obj, bytes)) if *passing_obj == obj => bytes.clone(),
                    // Promotion of an object whose bytes did not travel
                    // with this frame (e.g. re-ordered events): store a
                    // placeholder; it is refreshed the next time the
                    // object passes.
                    _ => Bytes::new(),
                };
                store.insert(obj, body);
            }
            CacheEvent::Evict(obj) => {
                store.remove(&obj);
            }
        }
    }
}

/// A running origin server: resolves every request with deterministic
/// pseudo-content sized by the workload's [`SizeModel`].
#[derive(Debug)]
pub struct OriginNode {
    handle: JoinHandle<()>,
}

impl Drop for OriginNode {
    fn drop(&mut self) {
        self.handle.abort();
    }
}

impl OriginNode {
    /// Spawns the origin server on `listener`.
    pub fn spawn(listener: TcpListener, book: Arc<AddressBook>) -> Self {
        let pool = Arc::new(Pool::new());
        let size_model = SizeModel::default();
        let served = Arc::new(AtomicU64::new(0));
        let handle = tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let book = Arc::clone(&book);
                let pool = Arc::clone(&pool);
                let served = Arc::clone(&served);
                tokio::spawn(async move {
                    while let Ok(Some(frame)) = read_frame(&mut stream).await {
                        // Answer scrapes so a metrics sweep over every
                        // address never hangs on the origin.
                        if frame == Frame::MetricsRequest {
                            let total = served.load(Ordering::Relaxed);
                            let family = net_families::ORIGIN_REQUESTS;
                            let text = format!("# TYPE {family} counter\n{family} {total}\n");
                            let response = Frame::MetricsResponse(Bytes::from(text.into_bytes()));
                            if write_frame(&mut stream, &response).await.is_err() {
                                break;
                            }
                            continue;
                        }
                        let Frame::Request(request) = frame else {
                            continue;
                        };
                        served.fetch_add(1, Ordering::Relaxed);
                        let body = origin_body(request.object, &size_model);
                        let reply = Reply::from_origin(&request, body.len() as u32);
                        let Some(addr) = book.addr_of(request.sender) else {
                            continue;
                        };
                        if pool.send(addr, Frame::Reply(reply, body)).await.is_err() {
                            break;
                        }
                    }
                });
            }
        });
        OriginNode { handle }
    }
}

/// Deterministic pseudo-content for an object: size from the size model,
/// bytes derived from the object ID so integrity can be checked
/// end-to-end.
pub fn origin_body(object: ObjectId, size_model: &SizeModel) -> Bytes {
    let size = size_model.size_of(object) as usize;
    let mut out = Vec::with_capacity(size);
    let mut state = object.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < size {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let chunk = state.to_le_bytes();
        let n = (size - out.len()).min(8);
        out.extend_from_slice(&chunk[..n]);
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_core::{AdcConfig, AdcProxy, ClientId, EventLog, ProxyId, Request, RequestId};

    #[test]
    fn handle_frame_feeds_events_through_the_probe() {
        let agent = Mutex::new(AdcProxy::new(ProxyId::new(0), 2, AdcConfig::default()));
        let store: Mutex<HashMap<ObjectId, Bytes>> = Mutex::new(HashMap::new());
        let rng = Mutex::new(StdRng::seed_from_u64(7));
        let probe = Mutex::new(EventLog::new());

        let client = ClientId::new(0);
        let request = Request::new(RequestId::new(client, 0), ObjectId::new(5), client);
        let out = handle_frame(&agent, &store, &rng, &probe, 1234, Frame::Request(request));
        // A miss forwards exactly one message onward.
        assert_eq!(out.len(), 1);
        let log = probe.lock();
        // The forward decision (learned/random/this-miss) was recorded
        // with the tick's timestamp.
        assert!(!log.is_empty(), "request handling must emit events");
        assert!(log.events().iter().all(|&(t, _)| t == 1234));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn origin_body_is_deterministic_and_sized() {
        let model = SizeModel::default();
        let a = origin_body(ObjectId::new(7), &model);
        let b = origin_body(ObjectId::new(7), &model);
        assert_eq!(a, b);
        assert_eq!(a.len() as u32, model.size_of(ObjectId::new(7)));
        let c = origin_body(ObjectId::new(8), &model);
        assert_ne!(a, c);
    }
}
