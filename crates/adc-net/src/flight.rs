//! The crash flight recorder: post-mortem dumps of a node's last spans
//! and metric registry.
//!
//! A [`FlightRecorder`] is shared by every node of a cluster. Two
//! events trigger a dump: the node's own frame handler panicking (the
//! connection loop catches the unwind, dumps, and takes the node
//! down), and the replay driver declaring a peer dead after repeated
//! consecutive timeouts ([`crate::drive_workload_traced`]). Either way
//! the dump is a self-describing JSONL file: a header object carrying
//! the reason, the drop counters and the full Prometheus registry
//! snapshot, followed by the newest spans from the node's ring — the
//! last causally-ordered evidence of what the node was doing.

use crate::node::{render_node_metrics, ProxyNode};
use crate::trace::NodeTracer;
use adc_core::CacheAgent;
use adc_obs::json::write_escaped;
use adc_obs::netspan::write_net_span_json;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes post-mortem files for dead or dying nodes.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    last: usize,
}

impl FlightRecorder {
    /// Creates a recorder writing into `dir` (created if missing),
    /// keeping the newest `last` spans per dump.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn new(dir: impl Into<PathBuf>, last: usize) -> io::Result<FlightRecorder> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FlightRecorder { dir, last })
    }

    /// Where dumps for proxy `p` land.
    pub fn path_for(&self, proxy: u32) -> PathBuf {
        self.dir.join(format!("postmortem-proxy-{proxy}.jsonl"))
    }

    /// Dumps `node`'s registry snapshot and newest spans, returning the
    /// file path. Used by the driver when it declares a peer dead; the
    /// node itself may be unresponsive, so everything is read from the
    /// shared in-process handles, not over the wire.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn dump_proxy<A: CacheAgent>(
        &self,
        node: &ProxyNode<A>,
        now_us: u64,
        reason: &str,
    ) -> io::Result<PathBuf> {
        let (proxy, metrics) = {
            let agent = node.agent.lock();
            let trace = node.tracer.as_ref().map(|t| t.lock().counters());
            (
                agent.proxy_id().raw(),
                render_node_metrics(
                    agent.proxy_id(),
                    agent.stats(),
                    node.store.lock().len(),
                    trace,
                ),
            )
        };
        self.dump_parts(proxy, &metrics, node.tracer.as_deref(), now_us, reason)
    }

    /// The dump primitive: also called from inside a node's connection
    /// loop on panic, where only the shared parts are in scope.
    pub(crate) fn dump_parts(
        &self,
        proxy: u32,
        metrics: &str,
        tracer: Option<&Mutex<NodeTracer>>,
        now_us: u64,
        reason: &str,
    ) -> io::Result<PathBuf> {
        let (dropped, spans) = match tracer {
            Some(t) => {
                let t = t.lock();
                (t.dropped_total(), t.ring().last(self.last))
            }
            None => (0, Vec::new()),
        };
        let mut out = String::with_capacity(1024 + spans.len() * 128);
        let _ = write!(out, "{{\"node\":{proxy},\"reason\":");
        write_escaped(&mut out, reason);
        let _ = write!(
            out,
            ",\"now_us\":{now_us},\"spans_dropped\":{dropped},\"spans\":{},\"metrics\":",
            spans.len()
        );
        write_escaped(&mut out, metrics);
        out.push_str("}\n");
        for span in &spans {
            write_net_span_json(&mut out, span);
            out.push('\n');
        }
        let path = self.path_for(proxy);
        fs::write(&path, out)?;
        Ok(path)
    }

    /// The directory dumps land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TraceContext;
    use adc_obs::validate_json;
    use adc_obs::SegmentKind;

    #[test]
    fn dump_writes_header_plus_newest_spans() {
        let dir = std::env::temp_dir().join(format!("adc-flight-{}", std::process::id()));
        let recorder = FlightRecorder::new(&dir, 2).unwrap();
        let tracer = Mutex::new(NodeTracer::new(3, 8));
        for i in 0..4u64 {
            tracer.lock().record_leaf(
                TraceContext {
                    trace_id: 1,
                    parent_span: 0,
                    hop: 0,
                },
                i,
                SegmentKind::ReplyReturn,
                i * 10,
                i * 10 + 5,
            );
        }
        let path = recorder
            .dump_parts(
                3,
                "adc_requests_received_total{proxy=\"3\"} 4\n",
                Some(&tracer),
                99,
                "test dump",
            )
            .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header plus the newest two spans");
        for line in &lines {
            validate_json(line).expect("every dump line is valid JSON");
        }
        assert!(lines[0].contains("\"reason\":\"test dump\""));
        assert!(lines[0].contains("\"spans\":2"));
        assert!(lines[0].contains("adc_requests_received_total"));
        assert!(lines[2].contains("\"object\":3"), "newest span last");
        fs::remove_dir_all(&dir).ok();
    }
}
