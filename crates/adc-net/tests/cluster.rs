//! End-to-end tests of the TCP runtime: real sockets, real bytes.

use adc_core::{AdcConfig, CacheAgent, ClientId, ObjectId, ProxyId, ServedFrom};
use adc_net::{origin_body, Cluster};
use adc_workload::SizeModel;

fn small_config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(64)
        .multiple_capacity(64)
        .cache_capacity(32)
        .max_hops(8)
        .build()
}

#[tokio::test]
async fn request_resolves_with_correct_body() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(0)).await.unwrap();
    let object = ObjectId::new(1234);
    let (reply, body) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert_eq!(reply.object, object);
    assert_eq!(reply.size as usize, body.len());
    // Body is the origin's deterministic content.
    assert_eq!(body, origin_body(object, &SizeModel::default()));
    assert_eq!(client.in_flight(), 0);
}

#[tokio::test]
async fn repeated_requests_become_cache_hits() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(1)).await.unwrap();
    let object = ObjectId::new(777);
    let mut served = Vec::new();
    for _ in 0..8 {
        let (reply, body) = client.request(object, ProxyId::new(1)).await.unwrap();
        assert!(!body.is_empty());
        served.push(reply.served_from);
    }
    // After learning, some requests must be served from a proxy cache
    // with the same body the origin produced.
    assert!(
        served.iter().any(|s| s.is_hit()),
        "no cache hits after 8 requests: {served:?}"
    );
    // And the cached copy is byte-identical.
    let (reply, body) = client.request(object, ProxyId::new(1)).await.unwrap();
    assert!(reply.served_from.is_hit());
    assert_eq!(body, origin_body(object, &SizeModel::default()));
}

#[tokio::test]
async fn different_entry_proxies_converge_on_one_location() {
    let cluster = Cluster::spawn_adc(4, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(2)).await.unwrap();
    let object = ObjectId::new(31337);
    // Hammer the object through every entry proxy.
    for round in 0..6 {
        for p in 0..4 {
            let _ = client
                .request(object, ProxyId::new((p + round) % 4))
                .await
                .unwrap();
        }
    }
    // All proxies now hold a mapping for the object; the ones that do not
    // cache it agree on a location that does.
    let mut cached_at = Vec::new();
    for node in &cluster.proxies {
        if node.agent.lock().is_cached(object) {
            cached_at.push(node.agent.lock().proxy_id());
        }
    }
    assert!(
        !cached_at.is_empty(),
        "object should be cached somewhere after 24 requests"
    );
    let (reply, _) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert!(matches!(reply.served_from, ServedFrom::Cache(_)));
}

#[tokio::test]
async fn concurrent_clients_all_get_answers() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let mut tasks = Vec::new();
    let cluster = std::sync::Arc::new(cluster);
    for c in 0..8u32 {
        let cluster = std::sync::Arc::clone(&cluster);
        tasks.push(tokio::spawn(async move {
            let client = cluster.client(ClientId::new(c)).await.unwrap();
            for i in 0..20u64 {
                let object = ObjectId::new(i % 5); // shared hot objects
                let via = ProxyId::new((i % 3) as u32);
                let (reply, body) = client.request(object, via).await.unwrap();
                assert_eq!(reply.object, object);
                assert_eq!(reply.size as usize, body.len());
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let stats = cluster.cluster_stats();
    assert!(stats.requests_received >= 160);
    assert!(stats.local_hits > 0, "hot objects should produce hits");
}

#[tokio::test]
async fn stats_and_store_sizes_are_exposed() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(9)).await.unwrap();
    for i in 0..10u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
    }
    assert_eq!(cluster.num_proxies(), 2);
    let p0 = cluster.proxy_stats(ProxyId::new(0));
    assert!(p0.requests_received >= 10);
    let stored: usize = cluster.proxies.iter().map(|p| p.stored_objects()).sum();
    let cached: usize = cluster
        .proxies
        .iter()
        .map(|p| p.agent.lock().cached_objects())
        .sum();
    // The byte store mirrors the agents' cache decisions.
    assert_eq!(stored, cached);
}

#[tokio::test]
async fn carp_cluster_over_tcp_routes_to_owner() {
    let cluster = adc_net::Cluster::spawn_carp(3, 32).await.unwrap();
    let client = cluster.client(ClientId::new(5)).await.unwrap();
    let object = ObjectId::new(4242);
    // First request: origin miss; afterwards: hits at the hash owner no
    // matter which proxy the client enters through.
    let (first, _) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert!(!first.served_from.is_hit());
    for entry in 0..3u32 {
        let (reply, body) = client.request(object, ProxyId::new(entry)).await.unwrap();
        assert!(reply.served_from.is_hit(), "entry {entry} missed");
        assert_eq!(reply.size as usize, body.len());
    }
    // Exactly one proxy holds the object (hash routing never replicates).
    let holders = cluster
        .proxies
        .iter()
        .filter(|p| p.agent.lock().is_cached(object))
        .count();
    assert_eq!(holders, 1);
}

/// Extracts the value of `family{proxy="<p>"}` from a Prometheus text
/// exposition, if present.
fn sample_value(text: &str, family: &str, proxy: u32) -> Option<u64> {
    let needle = format!("{family}{{proxy=\"{proxy}\"}} ");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[tokio::test]
async fn scraped_metrics_validate_and_reconcile_with_stats() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(9)).await.unwrap();
    for i in 0..30u64 {
        client
            .request(ObjectId::new(i % 7), ProxyId::new((i % 3) as u32))
            .await
            .unwrap();
    }
    for p in 0..3u32 {
        let text = cluster.metrics_text(ProxyId::new(p)).await.unwrap();
        adc_metrics::validate_prometheus(&text)
            .unwrap_or_else(|e| panic!("proxy {p} exposition invalid: {e}"));
        let stats = cluster.proxy_stats(ProxyId::new(p));
        assert_eq!(
            sample_value(&text, "adc_requests_received_total", p),
            Some(stats.requests_received),
            "proxy {p} request counter drifted from its stats snapshot"
        );
        assert_eq!(
            sample_value(&text, "adc_local_hits_total", p),
            Some(stats.local_hits),
        );
        // The exposed gauge mirrors the live byte store.
        let stored = cluster.proxies[p as usize].stored_objects() as u64;
        assert_eq!(sample_value(&text, "adc_cached_objects", p), Some(stored));
    }
}

#[tokio::test]
async fn origin_scrape_counts_served_requests() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(10)).await.unwrap();
    // Distinct cold objects: every request reaches the origin exactly once.
    for i in 100..110u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
    }
    let text = cluster.origin_metrics_text().await.unwrap();
    adc_metrics::validate_prometheus(&text).unwrap();
    let served: u64 = text
        .lines()
        .find(|l| l.starts_with("adc_origin_requests_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("origin exposition missing its request counter");
    assert_eq!(served, 10);
}

#[tokio::test]
async fn scrape_does_not_disturb_request_traffic() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(11)).await.unwrap();
    for i in 0..5u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
        // Interleave a scrape between requests on a fresh connection.
        let text = cluster.metrics_text(ProxyId::new(0)).await.unwrap();
        assert!(text.contains("adc_requests_received_total"));
    }
    assert_eq!(client.in_flight(), 0);
    // Proxy-to-proxy forwards also count, so at least the 5 client entries.
    let stats = cluster.proxy_stats(ProxyId::new(0));
    assert!(stats.requests_received >= 5);
}
