//! End-to-end tests of the TCP runtime: real sockets, real bytes.

use adc_core::{AdcConfig, CacheAgent, ClientId, ObjectId, ProxyId, ServedFrom};
use adc_net::{drive_workload_traced, origin_body, Cluster, ClusterOptions, FlightRecorder};
use adc_obs::netspan::{parse_net_spans_jsonl, NetSpan};
use adc_workload::{Phase, RequestRecord, SizeModel};
use std::collections::HashSet;
use std::time::Duration;

fn small_config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(64)
        .multiple_capacity(64)
        .cache_capacity(32)
        .max_hops(8)
        .build()
}

#[tokio::test]
async fn request_resolves_with_correct_body() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(0)).await.unwrap();
    let object = ObjectId::new(1234);
    let (reply, body) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert_eq!(reply.object, object);
    assert_eq!(reply.size as usize, body.len());
    // Body is the origin's deterministic content.
    assert_eq!(body, origin_body(object, &SizeModel::default()));
    assert_eq!(client.in_flight(), 0);
}

#[tokio::test]
async fn repeated_requests_become_cache_hits() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(1)).await.unwrap();
    let object = ObjectId::new(777);
    let mut served = Vec::new();
    for _ in 0..8 {
        let (reply, body) = client.request(object, ProxyId::new(1)).await.unwrap();
        assert!(!body.is_empty());
        served.push(reply.served_from);
    }
    // After learning, some requests must be served from a proxy cache
    // with the same body the origin produced.
    assert!(
        served.iter().any(|s| s.is_hit()),
        "no cache hits after 8 requests: {served:?}"
    );
    // And the cached copy is byte-identical.
    let (reply, body) = client.request(object, ProxyId::new(1)).await.unwrap();
    assert!(reply.served_from.is_hit());
    assert_eq!(body, origin_body(object, &SizeModel::default()));
}

#[tokio::test]
async fn different_entry_proxies_converge_on_one_location() {
    let cluster = Cluster::spawn_adc(4, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(2)).await.unwrap();
    let object = ObjectId::new(31337);
    // Hammer the object through every entry proxy.
    for round in 0..6 {
        for p in 0..4 {
            let _ = client
                .request(object, ProxyId::new((p + round) % 4))
                .await
                .unwrap();
        }
    }
    // All proxies now hold a mapping for the object; the ones that do not
    // cache it agree on a location that does.
    let mut cached_at = Vec::new();
    for node in &cluster.proxies {
        if node.agent.lock().is_cached(object) {
            cached_at.push(node.agent.lock().proxy_id());
        }
    }
    assert!(
        !cached_at.is_empty(),
        "object should be cached somewhere after 24 requests"
    );
    let (reply, _) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert!(matches!(reply.served_from, ServedFrom::Cache(_)));
}

#[tokio::test]
async fn concurrent_clients_all_get_answers() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let mut tasks = Vec::new();
    let cluster = std::sync::Arc::new(cluster);
    for c in 0..8u32 {
        let cluster = std::sync::Arc::clone(&cluster);
        tasks.push(tokio::spawn(async move {
            let client = cluster.client(ClientId::new(c)).await.unwrap();
            for i in 0..20u64 {
                let object = ObjectId::new(i % 5); // shared hot objects
                let via = ProxyId::new((i % 3) as u32);
                let (reply, body) = client.request(object, via).await.unwrap();
                assert_eq!(reply.object, object);
                assert_eq!(reply.size as usize, body.len());
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let stats = cluster.cluster_stats();
    assert!(stats.requests_received >= 160);
    assert!(stats.local_hits > 0, "hot objects should produce hits");
}

#[tokio::test]
async fn stats_and_store_sizes_are_exposed() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(9)).await.unwrap();
    for i in 0..10u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
    }
    assert_eq!(cluster.num_proxies(), 2);
    let p0 = cluster.proxy_stats(ProxyId::new(0));
    assert!(p0.requests_received >= 10);
    let stored: usize = cluster.proxies.iter().map(|p| p.stored_objects()).sum();
    let cached: usize = cluster
        .proxies
        .iter()
        .map(|p| p.agent.lock().cached_objects())
        .sum();
    // The byte store mirrors the agents' cache decisions.
    assert_eq!(stored, cached);
}

#[tokio::test]
async fn carp_cluster_over_tcp_routes_to_owner() {
    let cluster = adc_net::Cluster::spawn_carp(3, 32).await.unwrap();
    let client = cluster.client(ClientId::new(5)).await.unwrap();
    let object = ObjectId::new(4242);
    // First request: origin miss; afterwards: hits at the hash owner no
    // matter which proxy the client enters through.
    let (first, _) = client.request(object, ProxyId::new(0)).await.unwrap();
    assert!(!first.served_from.is_hit());
    for entry in 0..3u32 {
        let (reply, body) = client.request(object, ProxyId::new(entry)).await.unwrap();
        assert!(reply.served_from.is_hit(), "entry {entry} missed");
        assert_eq!(reply.size as usize, body.len());
    }
    // Exactly one proxy holds the object (hash routing never replicates).
    let holders = cluster
        .proxies
        .iter()
        .filter(|p| p.agent.lock().is_cached(object))
        .count();
    assert_eq!(holders, 1);
}

use adc_metrics::sample_value;

#[tokio::test]
async fn scraped_metrics_validate_and_reconcile_with_stats() {
    let cluster = Cluster::spawn_adc(3, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(9)).await.unwrap();
    for i in 0..30u64 {
        client
            .request(ObjectId::new(i % 7), ProxyId::new((i % 3) as u32))
            .await
            .unwrap();
    }
    for p in 0..3u32 {
        let text = cluster.metrics_text(ProxyId::new(p)).await.unwrap();
        adc_metrics::validate_prometheus(&text)
            .unwrap_or_else(|e| panic!("proxy {p} exposition invalid: {e}"));
        let stats = cluster.proxy_stats(ProxyId::new(p));
        assert_eq!(
            sample_value(&text, "adc_requests_received_total", p),
            Some(stats.requests_received),
            "proxy {p} request counter drifted from its stats snapshot"
        );
        assert_eq!(
            sample_value(&text, "adc_local_hits_total", p),
            Some(stats.local_hits),
        );
        // The exposed gauge mirrors the live byte store.
        let stored = cluster.proxies[p as usize].stored_objects() as u64;
        assert_eq!(sample_value(&text, "adc_cached_objects", p), Some(stored));
    }
}

#[tokio::test]
async fn origin_scrape_counts_served_requests() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(10)).await.unwrap();
    // Distinct cold objects: every request reaches the origin exactly once.
    for i in 100..110u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
    }
    let text = cluster.origin_metrics_text().await.unwrap();
    adc_metrics::validate_prometheus(&text).unwrap();
    let served = adc_metrics::sample(&text, "adc_origin_requests_total")
        .expect("origin exposition missing its request counter");
    assert_eq!(served, 10);
}

#[tokio::test]
async fn scrape_does_not_disturb_request_traffic() {
    let cluster = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let client = cluster.client(ClientId::new(11)).await.unwrap();
    for i in 0..5u64 {
        client
            .request(ObjectId::new(i), ProxyId::new(0))
            .await
            .unwrap();
        // Interleave a scrape between requests on a fresh connection.
        let text = cluster.metrics_text(ProxyId::new(0)).await.unwrap();
        assert!(text.contains("adc_requests_received_total"));
    }
    assert_eq!(client.in_flight(), 0);
    // Proxy-to-proxy forwards also count, so at least the 5 client entries.
    let stats = cluster.proxy_stats(ProxyId::new(0));
    assert!(stats.requests_received >= 5);
}

fn record(seq: u64, client: u32, object: u64) -> RequestRecord {
    RequestRecord {
        seq,
        client: ClientId::new(client),
        object: ObjectId::new(object),
        size: 0,
        phase: Phase::Fill,
    }
}

/// All spans a set of scrapes holds, regardless of lane.
fn all_spans(scrapes: &[(String, adc_net::TraceScrapeResult)]) -> Vec<NetSpan> {
    scrapes
        .iter()
        .flat_map(|(name, s)| {
            parse_net_spans_jsonl(&s.jsonl)
                .unwrap_or_else(|e| panic!("lane {name} scraped bad JSONL: {e}"))
        })
        .collect()
}

#[tokio::test]
async fn traced_cluster_links_one_trace_across_nodes() {
    let cluster = Cluster::spawn_adc_traced(4, small_config(), 4096)
        .await
        .unwrap();
    // Cold objects through varied entry proxies: every request crosses
    // at least client -> proxy -> origin, many hop proxy-to-proxy.
    let workload: Vec<RequestRecord> = (0..40u64)
        .map(|i| record(i, i as u32 % 4, 500 + i))
        .collect();
    let traced = drive_workload_traced(&cluster, workload, Duration::from_secs(5), None)
        .await
        .unwrap();
    assert_eq!(traced.report.completed, 40);
    assert_eq!(traced.report.timeouts, 0);
    assert!(traced.dead_proxies.is_empty());

    let client_trace = traced
        .client_trace
        .expect("traced cluster traces its client");
    let client_spans = parse_net_spans_jsonl(&client_trace.jsonl).unwrap();
    assert_eq!(
        client_spans.len(),
        40,
        "one root client_wait span per request"
    );
    assert!(client_spans.iter().all(|s| s.parent_span == 0));

    let scrapes = cluster.collect_traces().await.unwrap();
    assert_eq!(scrapes.len(), 5, "four proxy lanes plus the origin");
    let node_spans = all_spans(&scrapes);
    assert!(!node_spans.is_empty());

    // Every node span belongs to a trace some client request minted.
    let roots: HashSet<u64> = client_spans.iter().map(|s| s.trace_id).collect();
    assert!(node_spans.iter().all(|s| roots.contains(&s.trace_id)));

    // At least one trace id spans two or more distinct nodes: the
    // cluster-wide linkage the merge keys on.
    let mut nodes_by_trace: std::collections::HashMap<u64, HashSet<u32>> =
        std::collections::HashMap::new();
    for s in &node_spans {
        nodes_by_trace.entry(s.trace_id).or_default().insert(s.node);
    }
    assert!(
        nodes_by_trace.values().any(|nodes| nodes.len() >= 2),
        "no trace crossed nodes: {nodes_by_trace:?}"
    );

    // Parent/child linkage survives the wire: some node span nests
    // under another recorded span (a client root or an upstream hop).
    let span_ids: HashSet<u64> = client_spans
        .iter()
        .chain(node_spans.iter())
        .map(|s| s.span_id)
        .collect();
    assert!(
        node_spans.iter().any(|s| span_ids.contains(&s.parent_span)),
        "no cross-node parent linkage"
    );

    // A second scrape finds drained rings.
    let again = cluster.collect_traces().await.unwrap();
    assert!(all_spans(&again).is_empty(), "scrape must drain the rings");
}

#[tokio::test]
async fn trace_drop_counter_reconciles_metrics_with_the_ring() {
    // A tiny ring forces overwrites on proxy 0.
    let agents = (0..2u32)
        .map(|i| adc_core::AdcProxy::new(ProxyId::new(i), 2, small_config()))
        .collect();
    let cluster = Cluster::spawn_with_agents_opts(
        agents,
        ClusterOptions {
            trace_capacity: Some(4),
            flight: None,
        },
    )
    .await
    .unwrap();
    let client = cluster.client(ClientId::new(3)).await.unwrap();
    for i in 0..30u64 {
        client
            .request(ObjectId::new(900 + i), ProxyId::new(0))
            .await
            .unwrap();
    }
    let text = cluster.metrics_text(ProxyId::new(0)).await.unwrap();
    adc_metrics::validate_prometheus(&text).unwrap();
    let dropped_metric = sample_value(&text, "adc_net_trace_dropped_total", 0)
        .expect("traced node exposes its drop counter");
    let spans_metric = sample_value(&text, "adc_net_trace_spans_total", 0)
        .expect("traced node exposes its span counter");
    // Block-scope the guard: clippy's await_holding_lock is lexical and
    // ignores an explicit drop before the awaits below.
    {
        let tracer = cluster.proxies[0].tracer.as_ref().unwrap().lock();
        assert_eq!(
            dropped_metric,
            tracer.dropped_total(),
            "metric must reconcile with the ring's own counter"
        );
        assert_eq!(spans_metric, tracer.counters().recorded);
    }
    assert!(
        dropped_metric > 0,
        "30 spans through a 4-slot ring must drop"
    );

    // An untraced cluster exposes no trace families at all.
    let untraced = Cluster::spawn_adc(2, small_config()).await.unwrap();
    let text = untraced.metrics_text(ProxyId::new(0)).await.unwrap();
    assert!(!text.contains("adc_net_trace_dropped_total"));
}

#[tokio::test]
async fn killed_proxy_trips_the_watchdog_and_dumps_a_postmortem() {
    let dir = std::env::temp_dir().join(format!("adc-flight-e2e-{}", std::process::id()));
    let recorder = std::sync::Arc::new(FlightRecorder::new(&dir, 16).unwrap());
    let agents = (0..4u32)
        .map(|i| adc_core::AdcProxy::new(ProxyId::new(i), 4, small_config()))
        .collect();
    let cluster = Cluster::spawn_with_agents_opts(
        agents,
        ClusterOptions {
            trace_capacity: Some(1024),
            flight: Some(std::sync::Arc::clone(&recorder)),
        },
    )
    .await
    .unwrap();

    // Warm the doomed proxy so its post-mortem has spans to show.
    let warm: Vec<RequestRecord> = (0..8u64).map(|i| record(i, 1, 700 + i)).collect();
    drive_workload_traced(&cluster, warm, Duration::from_secs(5), Some(&recorder))
        .await
        .unwrap();

    cluster.kill_proxy(ProxyId::new(1)).await;

    // Every record prefers the dead proxy; the watchdog must strike it
    // out and reroute the rest.
    let workload: Vec<RequestRecord> = (0..10u64).map(|i| record(i, 1, 800 + i)).collect();
    let traced = drive_workload_traced(
        &cluster,
        workload,
        Duration::from_millis(400),
        Some(&recorder),
    )
    .await
    .unwrap();
    assert!(
        traced.dead_proxies.contains(&ProxyId::new(1)),
        "the killed proxy must be declared dead: {:?}",
        traced.dead_proxies
    );
    assert_eq!(traced.postmortems.len(), traced.dead_proxies.len());
    assert_eq!(
        traced.report.completed + traced.report.timeouts,
        10,
        "every record is accounted for"
    );
    // Rerouted requests can still time out when a live proxy forwards
    // into the dead one, but some must get through.
    assert!(
        traced.report.completed >= 1,
        "rerouting must save records after the strikes: {:?}",
        traced.report
    );

    let path = &traced.postmortems[0];
    assert_eq!(path, &recorder.path_for(1));
    let text = std::fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        adc_obs::validate_json(line).expect("post-mortem lines are JSON");
    }
    assert!(lines[0].contains("\"node\":1"));
    assert!(lines[0].contains("consecutive timeouts"));
    assert!(lines[0].contains("adc_requests_received_total"));
    assert!(lines.len() > 1, "warmed proxy dumps its recent spans");

    // The dead proxy is skipped by later trace sweeps instead of
    // hanging them.
    let scrapes = cluster.collect_traces().await.unwrap();
    assert_eq!(scrapes.len(), 4, "three live proxies plus the origin");
    assert!(scrapes.iter().all(|(name, _)| name != "proxy-1"));

    std::fs::remove_dir_all(&dir).ok();
}

#[tokio::test]
async fn panicking_agent_takes_the_node_down_and_dumps() {
    /// An agent that panics when asked for the poisoned object.
    #[derive(Debug)]
    struct PoisonAgent {
        inner: adc_core::AdcProxy,
        poison: ObjectId,
    }
    impl CacheAgent for PoisonAgent {
        fn proxy_id(&self) -> ProxyId {
            self.inner.proxy_id()
        }
        fn on_request<P: adc_core::Probe>(
            &mut self,
            request: adc_core::Request,
            rng: &mut dyn rand::RngCore,
            probe: &mut P,
            out: &mut adc_core::ActionSink,
        ) {
            assert!(request.object != self.poison, "poisoned object");
            self.inner.on_request(request, rng, probe, out);
        }
        fn on_reply<P: adc_core::Probe>(
            &mut self,
            reply: adc_core::Reply,
            probe: &mut P,
            out: &mut adc_core::ActionSink,
        ) {
            self.inner.on_reply(reply, probe, out);
        }
        fn stats(&self) -> &adc_core::ProxyStats {
            self.inner.stats()
        }
        fn drain_cache_events(&mut self) -> Vec<adc_core::CacheEvent> {
            self.inner.drain_cache_events()
        }
        fn cached_objects(&self) -> usize {
            self.inner.cached_objects()
        }
        fn is_cached(&self, object: ObjectId) -> bool {
            self.inner.is_cached(object)
        }
        fn reset(&mut self) {
            self.inner.reset();
        }
    }

    let dir = std::env::temp_dir().join(format!("adc-flight-panic-{}", std::process::id()));
    let recorder = std::sync::Arc::new(FlightRecorder::new(&dir, 8).unwrap());
    let poison = ObjectId::new(666);
    let agents = (0..2u32)
        .map(|i| PoisonAgent {
            inner: adc_core::AdcProxy::new(ProxyId::new(i), 2, small_config()),
            poison,
        })
        .collect();
    let cluster = Cluster::spawn_with_agents_opts(
        agents,
        ClusterOptions {
            trace_capacity: Some(64),
            flight: Some(std::sync::Arc::clone(&recorder)),
        },
    )
    .await
    .unwrap();
    let client = cluster.client(ClientId::new(8)).await.unwrap();
    client
        .request(ObjectId::new(5), ProxyId::new(0))
        .await
        .unwrap();
    assert!(cluster.proxies[0].is_alive());

    // The poisoned request panics the handler: no reply, node down,
    // post-mortem on disk.
    let poisoned = client
        .request_timeout(poison, ProxyId::new(0), Duration::from_millis(500))
        .await;
    assert!(poisoned.is_err());
    assert!(!cluster.proxies[0].is_alive(), "panic must kill the node");
    let text = std::fs::read_to_string(recorder.path_for(0)).unwrap();
    assert!(text
        .lines()
        .next()
        .unwrap()
        .contains("panic in frame handler"));
    for line in text.lines() {
        adc_obs::validate_json(line).unwrap();
    }

    std::fs::remove_dir_all(&dir).ok();
}
