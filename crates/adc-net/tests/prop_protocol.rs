//! Property-based tests of the wire protocol: arbitrary messages
//! round-trip, arbitrary junk never panics the decoder.

use adc_core::{ClientId, NodeId, ObjectId, ProxyId, Reply, Request, RequestId, ServedFrom};
use adc_net::protocol::{decode, encode, Frame, TraceContext};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    prop::option::of((any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
        |(trace_id, parent_span, hop)| TraceContext {
            trace_id,
            parent_span,
            hop,
        },
    ))
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        any::<u32>().prop_map(|c| NodeId::Client(ClientId::new(c))),
        any::<u32>().prop_map(|p| NodeId::Proxy(ProxyId::new(p))),
        Just(NodeId::Origin),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        arb_node(),
        any::<u32>(),
    )
        .prop_map(|(idc, seq, object, client, sender, hops)| Request {
            id: RequestId::new(ClientId::new(idc), seq),
            object: ObjectId::new(object),
            client: ClientId::new(client),
            sender,
            hops,
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        prop::option::of(0u32..u32::MAX - 1),
        prop::option::of(0u32..u32::MAX - 1),
        prop::option::of(any::<u32>()),
        any::<u32>(),
    )
        .prop_map(
            |(idc, seq, object, client, resolver, cached_by, served, size)| Reply {
                id: RequestId::new(ClientId::new(idc), seq),
                object: ObjectId::new(object),
                client: ClientId::new(client),
                resolver: resolver.map(ProxyId::new),
                cached_by: cached_by.map(ProxyId::new),
                served_from: match served {
                    None => ServedFrom::Origin,
                    Some(p) => ServedFrom::Cache(ProxyId::new(p)),
                },
                size,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(request in arb_request(), ctx in arb_ctx()) {
        let frame = Frame::Request(request, ctx);
        prop_assert_eq!(decode(encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn replies_round_trip(reply in arb_reply(), body in prop::collection::vec(any::<u8>(), 0..2048), ctx in arb_ctx()) {
        let frame = Frame::Reply(reply, Bytes::from(body), ctx);
        prop_assert_eq!(decode(encode(&frame)).unwrap(), frame);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error
    /// or a valid frame.
    #[test]
    fn decoder_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(junk));
    }

    /// Truncating a valid encoding anywhere yields an error, never a
    /// silently wrong frame.
    #[test]
    fn truncation_always_errors(reply in arb_reply(), ctx in arb_ctx(), cut_fraction in 0.0f64..1.0) {
        let full = encode(&Frame::Reply(reply, Bytes::from_static(b"abcdef"), ctx));
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            prop_assert!(decode(full.slice(..cut)).is_err());
        }
    }
}
