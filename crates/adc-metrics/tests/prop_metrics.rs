//! Property-based tests of the metrics primitives against naive models.

use adc_metrics::{Histogram, Log2Histogram, MovingAverage, P2Quantile, Series, Summary};
use proptest::prelude::*;

/// Exact quantile of a sample by sorting: the smallest element whose
/// empirical CDF reaches `q`.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Checks a P² estimate against the sample it saw: the estimate must sit
/// inside the observed range, and its *rank* error (position in the
/// empirical CDF) must be bounded — the right yardstick for heavy tails,
/// where value distance is meaningless.
fn check_p2_estimate(values: &[f64], q: f64, rank_tol: f64) -> Result<(), TestCaseError> {
    let mut p2 = P2Quantile::new(q);
    for &v in values {
        p2.push(v);
    }
    let est = p2.value().unwrap();
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    prop_assert!(
        est >= lo && est <= hi,
        "q={q}: estimate {est} outside observed range [{lo}, {hi}]"
    );
    if values.len() < 20 {
        return Ok(()); // range containment only below the bound regime
    }
    let n = values.len() as f64;
    let frac_lt = values.iter().filter(|&&v| v < est).count() as f64 / n;
    let frac_le = values.iter().filter(|&&v| v <= est).count() as f64 / n;
    prop_assert!(
        frac_le >= q - rank_tol && frac_lt <= q + rank_tol,
        "q={q}: estimate {est} covers CDF [{frac_lt}, {frac_le}], want within {rank_tol} of {q} \
         (exact {})",
        exact_quantile(values, q)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(1) moving average equals the naive windowed mean at every
    /// step.
    #[test]
    fn moving_average_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 1..200), window in 1usize..20) {
        let mut ma = MovingAverage::new(window);
        for (i, &v) in values.iter().enumerate() {
            ma.push(v);
            let start = (i + 1).saturating_sub(window);
            let slice = &values[start..=i];
            let naive = slice.iter().sum::<f64>() / slice.len() as f64;
            let got = ma.value().unwrap();
            prop_assert!((got - naive).abs() < 1e-6_f64.max(naive.abs() * 1e-9),
                "step {i}: got {got}, naive {naive}");
        }
    }

    /// Summary mean/min/max/variance match naive computations.
    #[test]
    fn summary_matches_naive(values in prop::collection::vec(-1e5f64..1e5, 2..200)) {
        let s: Summary = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6_f64.max(mean.abs() * 1e-9));
        prop_assert!((s.variance().unwrap() - var).abs() < 1e-3_f64.max(var.abs() * 1e-6));
        prop_assert_eq!(s.min().unwrap(), values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any split of a stream equals summarizing the whole stream.
    #[test]
    fn summary_merge_associative(values in prop::collection::vec(-1e5f64..1e5, 2..150), split in 0usize..150) {
        let split = split.min(values.len());
        let whole: Summary = values.iter().copied().collect();
        let mut left: Summary = values[..split].iter().copied().collect();
        let right: Summary = values[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((left.variance().unwrap() - whole.variance().unwrap()).abs()
            < 1e-3_f64.max(whole.variance().unwrap().abs() * 1e-6));
    }

    /// Histogram counts are conserved and quantiles are monotone.
    #[test]
    fn histogram_conservation(values in prop::collection::vec(0f64..100.0, 1..200)) {
        let mut h = Histogram::new(10, 5.0);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = (0..10).map(|i| h.bucket_count(i)).sum::<u64>() + h.overflow();
        prop_assert_eq!(bucket_total, values.len() as u64);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    /// Merging any split of a stream into fixed-width histograms equals
    /// recording the interleaved stream, bucket for bucket — so
    /// merge-then-quantile equals interleaved-record-then-quantile — and
    /// merge is commutative.
    #[test]
    fn histogram_merge_equals_interleaved(
        values in prop::collection::vec(0f64..120.0, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let mut whole = Histogram::new(10, 5.0);
        let mut left = Histogram::new(10, 5.0);
        let mut right = Histogram::new(10, 5.0);
        for &v in &values {
            whole.record(v);
        }
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&lr, &whole, "merge must equal interleaved recording");
        prop_assert_eq!(&rl, &whole, "merge must be commutative");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(lr.quantile(q), whole.quantile(q));
        }
    }

    /// Same exact-merge property for the log2 registry histogram, over
    /// the full u64 domain.
    #[test]
    fn log2_histogram_merge_equals_interleaved(
        values in prop::collection::vec(any::<u64>(), 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let mut whole = Log2Histogram::new();
        let mut left = Log2Histogram::new();
        let mut right = Log2Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        prop_assert_eq!(&lr, &whole);
        prop_assert_eq!(&rl, &whole);
        for q in [0.5, 0.99] {
            prop_assert_eq!(lr.quantile(q), whole.quantile(q));
        }
    }

    /// P² median on sorted (ascending) input stays rank-accurate.
    #[test]
    fn p2_sorted_input_bounded_rank_error(
        mut values in prop::collection::vec(0f64..1e6, 1..300),
    ) {
        values.sort_by(f64::total_cmp);
        check_p2_estimate(&values, 0.5, 0.15)?;
        check_p2_estimate(&values, 0.99, 0.15)?;
    }

    /// P² median on reversed (descending) input stays rank-accurate.
    #[test]
    fn p2_reversed_input_bounded_rank_error(
        mut values in prop::collection::vec(0f64..1e6, 1..300),
    ) {
        values.sort_by(f64::total_cmp);
        values.reverse();
        check_p2_estimate(&values, 0.5, 0.15)?;
        check_p2_estimate(&values, 0.99, 0.15)?;
    }

    /// P² on a constant stream reports exactly the constant.
    #[test]
    fn p2_constant_input_is_exact(value in -1e6f64..1e6, n in 1usize..300) {
        let values = vec![value; n];
        for q in [0.5, 0.99] {
            let mut p2 = P2Quantile::new(q);
            for &v in &values {
                p2.push(v);
            }
            prop_assert_eq!(p2.value().unwrap(), value);
        }
    }

    /// P² on heavy-tailed (Pareto α=2) input: the value estimate may be
    /// far from the exact quantile, but its rank error stays bounded.
    /// (Heavier tails than α=2 genuinely break P²'s parabolic markers —
    /// measured median rank error reaches 0.49 on α=0.5 — so this pins
    /// the boundary of where the estimator is trustworthy.)
    #[test]
    fn p2_heavy_tail_bounded_rank_error(
        seeds in prop::collection::vec(1e-6f64..1.0, 20..300),
    ) {
        // Inverse-CDF Pareto transform: u in (0,1) -> u^(-1/2), the
        // classic finite-mean, infinite-higher-moment tail.
        let values: Vec<f64> = seeds.iter().map(|&u| u.powf(-0.5)).collect();
        check_p2_estimate(&values, 0.5, 0.25)?;
        check_p2_estimate(&values, 0.99, 0.25)?;
    }

    /// P² with fewer than five samples is exact (it sorts the buffer and
    /// picks the nearest rank, `round((n-1) * q)`).
    #[test]
    fn p2_small_samples_are_exact(values in prop::collection::vec(-1e6f64..1e6, 1..5)) {
        for q in [0.5, 0.99] {
            let mut p2 = P2Quantile::new(q);
            for &v in &values {
                p2.push(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            prop_assert_eq!(p2.value().unwrap(), sorted[idx]);
        }
    }

    /// Series tail means interpolate between last point and full mean.
    #[test]
    fn series_tail_mean_bounds(ys in prop::collection::vec(0f64..100.0, 1..100)) {
        let mut s = Series::new("t");
        for (i, &y) in ys.iter().enumerate() {
            s.push(i as f64, y);
        }
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for tail in [0.1, 0.5, 1.0] {
            let m = s.tail_mean_y(tail).unwrap();
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
