//! Property-based tests of the metrics primitives against naive models.

use adc_metrics::{Histogram, MovingAverage, Series, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(1) moving average equals the naive windowed mean at every
    /// step.
    #[test]
    fn moving_average_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 1..200), window in 1usize..20) {
        let mut ma = MovingAverage::new(window);
        for (i, &v) in values.iter().enumerate() {
            ma.push(v);
            let start = (i + 1).saturating_sub(window);
            let slice = &values[start..=i];
            let naive = slice.iter().sum::<f64>() / slice.len() as f64;
            let got = ma.value().unwrap();
            prop_assert!((got - naive).abs() < 1e-6_f64.max(naive.abs() * 1e-9),
                "step {i}: got {got}, naive {naive}");
        }
    }

    /// Summary mean/min/max/variance match naive computations.
    #[test]
    fn summary_matches_naive(values in prop::collection::vec(-1e5f64..1e5, 2..200)) {
        let s: Summary = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6_f64.max(mean.abs() * 1e-9));
        prop_assert!((s.variance().unwrap() - var).abs() < 1e-3_f64.max(var.abs() * 1e-6));
        prop_assert_eq!(s.min().unwrap(), values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any split of a stream equals summarizing the whole stream.
    #[test]
    fn summary_merge_associative(values in prop::collection::vec(-1e5f64..1e5, 2..150), split in 0usize..150) {
        let split = split.min(values.len());
        let whole: Summary = values.iter().copied().collect();
        let mut left: Summary = values[..split].iter().copied().collect();
        let right: Summary = values[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((left.variance().unwrap() - whole.variance().unwrap()).abs()
            < 1e-3_f64.max(whole.variance().unwrap().abs() * 1e-6));
    }

    /// Histogram counts are conserved and quantiles are monotone.
    #[test]
    fn histogram_conservation(values in prop::collection::vec(0f64..100.0, 1..200)) {
        let mut h = Histogram::new(10, 5.0);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = (0..10).map(|i| h.bucket_count(i)).sum::<u64>() + h.overflow();
        prop_assert_eq!(bucket_total, values.len() as u64);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    /// Series tail means interpolate between last point and full mean.
    #[test]
    fn series_tail_mean_bounds(ys in prop::collection::vec(0f64..100.0, 1..100)) {
        let mut s = Series::new("t");
        for (i, &y) in ys.iter().enumerate() {
            s.push(i as f64, y);
        }
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for tail in [0.1, 0.5, 1.0] {
            let m = s.tail_mean_y(tail).unwrap();
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
