//! Sampled time series, as plotted in the paper's Figures 11 and 12.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Series {
    /// Series name (used as a CSV column header).
    pub name: String,
    /// The sampled points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the y values, or `None` when empty.
    pub fn mean_y(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64)
    }

    /// The final y value, or `None` when empty.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of the y values over the trailing fraction `tail` of points
    /// (e.g. `0.25` = the last quarter), or `None` when empty.
    ///
    /// Useful for "steady-state" values that ignore a learning phase.
    pub fn tail_mean_y(&self, tail: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let tail = tail.clamp(0.0, 1.0);
        let n = ((self.points.len() as f64 * tail).ceil() as usize).max(1);
        let start = self.points.len() - n;
        Some(self.points[start..].iter().map(|&(_, y)| y).sum::<f64>() / n as f64)
    }
}

/// Records one y observation per x step but keeps only every `every`-th
/// point, so multi-million-request runs produce plottable series.
#[derive(Debug, Clone)]
pub struct Sampler {
    series: Series,
    every: u64,
    seen: u64,
}

impl Sampler {
    /// Creates a sampler that keeps every `every`-th observation.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(name: impl Into<String>, every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        Sampler {
            series: Series::new(name),
            every,
            seen: 0,
        }
    }

    /// Observes a value at the next x position; records it if due.
    pub fn observe(&mut self, x: f64, y: f64) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.series.push(x, y);
        }
    }

    /// Number of observations seen (recorded or not).
    pub fn observations(&self) -> u64 {
        self.seen
    }

    /// Borrows the recorded series.
    pub fn series(&self) -> &Series {
        &self.series
    }

    /// Consumes the sampler, returning the recorded series.
    pub fn into_series(self) -> Series {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = Series::new("hits");
        assert!(s.is_empty());
        assert_eq!(s.mean_y(), None);
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean_y(), Some(2.0));
        assert_eq!(s.last_y(), Some(3.0));
    }

    #[test]
    fn tail_mean_takes_the_trailing_fraction() {
        let mut s = Series::new("x");
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        // Last half: 5..9 → mean 7.
        assert_eq!(s.tail_mean_y(0.5), Some(7.0));
        // Degenerate fractions still take at least one point.
        assert_eq!(s.tail_mean_y(0.0), Some(9.0));
        assert_eq!(s.tail_mean_y(1.0), Some(4.5));
    }

    #[test]
    fn sampler_keeps_every_nth() {
        let mut s = Sampler::new("hits", 3);
        for i in 1..=9 {
            s.observe(i as f64, (i * 10) as f64);
        }
        let pts = &s.series().points;
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (3.0, 30.0));
        assert_eq!(pts[2], (9.0, 90.0));
        assert_eq!(s.observations(), 9);
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_rejected() {
        let _ = Sampler::new("x", 0);
    }
}
