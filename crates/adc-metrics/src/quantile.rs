//! Streaming quantile estimation with the P² algorithm (Jain &
//! Chlamtac, 1985): O(1) memory, no sample buffer, good accuracy for
//! central and tail quantiles of smooth distributions.

use serde::{Deserialize, Serialize};

/// A streaming estimator for one quantile `q` of an observation stream.
///
/// # Examples
///
/// ```
/// use adc_metrics::P2Quantile;
///
/// let mut median = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     median.push(i as f64);
/// }
/// let est = median.value().unwrap();
/// assert!((est - 501.0).abs() < 5.0, "estimated {est}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the 5 tracked order statistics).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_unstable_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Find the cell the observation falls into and update extremes.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= value && value < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        h[i] + d * (h[j] - h[i]) / (n[j] - n[i])
    }

    /// The current estimate, or `None` before any observation.
    ///
    /// With fewer than five observations the exact sample quantile is
    /// returned.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut seen: Vec<f64> = self.heights[..n as usize].to_vec();
                seen.sort_unstable_by(|a, b| a.total_cmp(b));
                let idx = ((n as f64 - 1.0) * self.q).round() as usize;
                Some(seen[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random stream (splitmix64 → uniform).
    fn uniform_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact_quantile(data: &[f64], q: f64) -> f64 {
        let mut sorted = data.to_vec();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        sorted[((sorted.len() as f64 - 1.0) * q).round() as usize]
    }

    #[test]
    fn empty_has_no_value() {
        assert_eq!(P2Quantile::new(0.5).value(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        p.push(3.0);
        assert_eq!(p.value(), Some(3.0));
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn median_of_uniform() {
        let data = uniform_stream(50_000, 7);
        let mut p = P2Quantile::new(0.5);
        for &v in &data {
            p.push(v);
        }
        let est = p.value().unwrap();
        let exact = exact_quantile(&data, 0.5);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn p99_of_uniform() {
        let data = uniform_stream(50_000, 13);
        let mut p = P2Quantile::new(0.99);
        for &v in &data {
            p.push(v);
        }
        let est = p.value().unwrap();
        let exact = exact_quantile(&data, 0.99);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn skewed_distribution() {
        // Exponential-ish via -ln(u).
        let data: Vec<f64> = uniform_stream(50_000, 21)
            .into_iter()
            .map(|u| -(u.max(1e-12)).ln())
            .collect();
        let mut p = P2Quantile::new(0.9);
        for &v in &data {
            p.push(v);
        }
        let est = p.value().unwrap();
        let exact = exact_quantile(&data, 0.9);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn monotone_input_is_handled() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p.push(i as f64);
        }
        let est = p.value().unwrap();
        assert!((est - 5_000.0).abs() < 200.0, "est {est}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
