//! Sliding-window moving averages.
//!
//! The paper's hit-rate figures plot "the average hit rate as a moving
//! average over the last 5000 requests"; [`MovingAverage`] implements
//! exactly that in O(1) per observation.

/// Arithmetic mean over the last `window` observations.
///
/// # Examples
///
/// ```
/// use adc_metrics::MovingAverage;
///
/// let mut ma = MovingAverage::new(3);
/// ma.push(1.0);
/// ma.push(2.0);
/// ma.push(3.0);
/// assert_eq!(ma.value(), Some(2.0));
/// ma.push(10.0); // evicts 1.0
/// assert_eq!(ma.value(), Some(5.0));
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: Vec<f64>,
    window: usize,
    next: usize,
    filled: bool,
    sum: f64,
    observations: u64,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            buf: Vec::with_capacity(window),
            window,
            next: 0,
            filled: false,
            sum: 0.0,
            observations: 0,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total observations pushed so far (not capped by the window).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of observations currently inside the window.
    pub fn len(&self) -> usize {
        if self.filled {
            self.window
        } else {
            self.buf.len()
        }
    }

    /// Returns `true` when no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` once the window is fully populated.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    /// Adds an observation, evicting the oldest once the window is full.
    pub fn push(&mut self, value: f64) {
        self.observations += 1;
        if self.filled {
            self.sum += value - self.buf[self.next];
            self.buf[self.next] = value;
            self.next = (self.next + 1) % self.window;
        } else {
            self.buf.push(value);
            self.sum += value;
            if self.buf.len() == self.window {
                self.filled = true;
                self.next = 0;
            }
        }
        // Periodically recompute the sum to stop floating-point drift from
        // accumulating over millions of observations.
        if self
            .observations
            .is_multiple_of((16 * self.window as u64).max(1 << 20))
        {
            self.sum = self.buf.iter().sum();
        }
    }

    /// Convenience for hit/miss style observations.
    pub fn push_bool(&mut self, hit: bool) {
        self.push(if hit { 1.0 } else { 0.0 });
    }

    /// Current mean over the window, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum / self.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_value() {
        let ma = MovingAverage::new(4);
        assert_eq!(ma.value(), None);
        assert!(ma.is_empty());
        assert!(!ma.is_full());
    }

    #[test]
    fn partial_window_averages_what_it_has() {
        let mut ma = MovingAverage::new(4);
        ma.push(2.0);
        ma.push(4.0);
        assert_eq!(ma.value(), Some(3.0));
        assert_eq!(ma.len(), 2);
    }

    #[test]
    fn full_window_slides() {
        let mut ma = MovingAverage::new(2);
        ma.push(1.0);
        ma.push(3.0);
        assert!(ma.is_full());
        ma.push(5.0);
        assert_eq!(ma.value(), Some(4.0));
        assert_eq!(ma.len(), 2);
        assert_eq!(ma.observations(), 3);
    }

    #[test]
    fn bool_observations_give_a_rate() {
        let mut ma = MovingAverage::new(4);
        for hit in [true, true, false, false] {
            ma.push_bool(hit);
        }
        assert_eq!(ma.value(), Some(0.5));
    }

    #[test]
    fn long_stream_stays_accurate() {
        let mut ma = MovingAverage::new(1000);
        for i in 0..2_100_000u64 {
            ma.push((i % 2) as f64);
        }
        let v = ma.value().unwrap();
        assert!((v - 0.5).abs() < 1e-9, "drifted: {v}");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = MovingAverage::new(0);
    }
}
