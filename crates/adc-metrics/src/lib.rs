//! # adc-metrics
//!
//! Measurement utilities shared by the ADC simulator, benchmarks and
//! examples: the 5000-request [`MovingAverage`] from the paper's figures,
//! sampled [`Series`] for plotting, streaming [`Summary`] statistics,
//! [`Histogram`]s, tiny CSV export helpers (see [`csv`]), and the
//! per-proxy metric [`Registry`] with Prometheus text exposition (see
//! [`registry`]).
//!
//! # Examples
//!
//! Track a hit-rate curve the way Figure 11 of the paper does:
//!
//! ```
//! use adc_metrics::{MovingAverage, Sampler};
//!
//! let mut window = MovingAverage::new(5000);
//! let mut curve = Sampler::new("adc", 5000);
//! for i in 0..20_000u64 {
//!     let hit = i % 3 == 0;
//!     window.push_bool(hit);
//!     if let Some(rate) = window.value() {
//!         curve.observe(i as f64, rate);
//!     }
//! }
//! assert_eq!(curve.series().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
mod histogram;
mod moving;
mod quantile;
pub mod registry;
mod series;
mod summary;
mod text;

pub use histogram::Histogram;
pub use moving::MovingAverage;
pub use quantile::P2Quantile;
pub use registry::{validate_prometheus, Log2Histogram, Registry, RegistrySnapshot};
pub use series::{Sampler, Series};
pub use summary::Summary;
pub use text::{sample, sample_value};
