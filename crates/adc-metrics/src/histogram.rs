//! A simple fixed-width histogram for hop counts and latencies.

use serde::{Deserialize, Serialize};

/// Histogram over `[0, buckets * width)` with an overflow bucket.
///
/// # Examples
///
/// ```
/// use adc_metrics::Histogram;
///
/// let mut h = Histogram::new(10, 1.0);
/// h.record(0.5);
/// h.record(3.2);
/// h.record(3.7);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(3), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
    width: f64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `width` is not positive and finite.
    pub fn new(buckets: usize, width: f64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive"
        );
        Histogram {
            counts: vec![0; buckets],
            overflow: 0,
            width,
            total: 0,
        }
    }

    /// Records one observation. Negative values count into bucket 0.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = (value.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations in bucket `i` (`[i*width, (i+1)*width)`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Observations that exceeded the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Adds every observation of `other` into `self`.
    ///
    /// Exact for same-shape histograms: because both sides bucket on
    /// identical edges, merging the counts then taking a quantile equals
    /// recording the interleaved streams into one histogram, and merge is
    /// commutative.
    ///
    /// # Panics
    ///
    /// Panics if the histograms differ in bucket count or width.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bucket counts must match"
        );
        assert!(
            self.width.to_bits() == other.width.to_bits(),
            "histogram bucket widths must match"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile (0.0–1.0) by bucket midpoint; `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i as f64 + 0.5) * self.width);
            }
        }
        // Overflow bucket: report the lower edge of the overflow range.
        Some(self.counts.len() as f64 * self.width)
    }

    /// Iterates `(bucket_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(4, 2.0);
        h.record(0.0); // bucket 0
        h.record(1.9); // bucket 0
        h.record(2.0); // bucket 1
        h.record(7.9); // bucket 3
        h.record(8.0); // overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let mut h = Histogram::new(2, 1.0);
        h.record(-3.0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10, 1.0);
        for i in 0..10 {
            h.record(i as f64 + 0.1);
        }
        assert_eq!(h.quantile(0.0), Some(0.5));
        assert_eq!(h.quantile(0.5), Some(4.5));
        assert_eq!(h.quantile(1.0), Some(9.5));
        assert_eq!(Histogram::new(2, 1.0).quantile(0.5), None);
    }

    #[test]
    fn quantile_in_overflow_reports_range_edge() {
        let mut h = Histogram::new(2, 1.0);
        h.record(100.0);
        assert_eq!(h.quantile(0.5), Some(2.0));
    }

    #[test]
    fn merge_adds_counts_and_overflow() {
        let mut a = Histogram::new(4, 1.0);
        let mut b = Histogram::new(4, 1.0);
        a.record(0.5);
        a.record(10.0); // overflow
        b.record(0.7);
        b.record(2.5);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.bucket_count(2), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket counts must match")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(4, 1.0);
        a.merge(&Histogram::new(5, 1.0));
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn merge_rejects_width_mismatch() {
        let mut a = Histogram::new(4, 1.0);
        a.merge(&Histogram::new(4, 2.0));
    }

    #[test]
    fn iter_yields_edges() {
        let h = Histogram::new(3, 0.5);
        let edges: Vec<f64> = h.iter().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.0, 0.5, 1.0]);
    }
}
