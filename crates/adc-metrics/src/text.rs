//! Reading samples back out of a Prometheus text exposition.
//!
//! The cluster runtime scrapes nodes in-band and tests reconcile the
//! scraped counters against in-process state; these helpers are the one
//! shared parser for that, so every test and tool extracts samples the
//! same way instead of re-rolling line splitting.

/// Extracts the value of `family{proxy="<p>"}` from a Prometheus text
/// exposition, if present.
///
/// # Examples
///
/// ```
/// let text = "# TYPE adc_local_hits_total counter\nadc_local_hits_total{proxy=\"2\"} 17\n";
/// assert_eq!(adc_metrics::sample_value(text, "adc_local_hits_total", 2), Some(17));
/// assert_eq!(adc_metrics::sample_value(text, "adc_local_hits_total", 3), None);
/// ```
pub fn sample_value(text: &str, family: &str, proxy: u32) -> Option<u64> {
    let needle = format!("{family}{{proxy=\"{proxy}\"}} ");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Extracts the value of an unlabelled `family` sample, if present.
///
/// # Examples
///
/// ```
/// let text = "# TYPE adc_origin_requests_total counter\nadc_origin_requests_total 9\n";
/// assert_eq!(adc_metrics::sample(text, "adc_origin_requests_total"), Some(9));
/// ```
pub fn sample(text: &str, family: &str) -> Option<u64> {
    let needle = format!("{family} ");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "\
# TYPE adc_requests_received_total counter
adc_requests_received_total{proxy=\"0\"} 12
adc_requests_received_total{proxy=\"1\"} 7
# TYPE adc_origin_requests_total counter
adc_origin_requests_total 3
";

    #[test]
    fn labelled_samples_resolve_per_proxy() {
        assert_eq!(
            sample_value(TEXT, "adc_requests_received_total", 0),
            Some(12)
        );
        assert_eq!(
            sample_value(TEXT, "adc_requests_received_total", 1),
            Some(7)
        );
        assert_eq!(sample_value(TEXT, "adc_requests_received_total", 2), None);
        assert_eq!(sample_value(TEXT, "no_such_family", 0), None);
    }

    #[test]
    fn unlabelled_sample_skips_comments_and_labelled_lines() {
        assert_eq!(sample(TEXT, "adc_origin_requests_total"), Some(3));
        assert_eq!(sample(TEXT, "adc_requests_received_total"), None);
    }
}
