//! Minimal CSV export for experiment results.
//!
//! Only what the figure harness needs: numeric tables with a header row.
//! Fields containing commas, quotes or newlines are quoted per RFC 4180.

use crate::series::Series;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Escapes one CSV field.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Whether a cell is the `Display` form of a non-finite float. Such
/// cells would round-trip poorly (and silently poison downstream
/// plotting), so the writers reject them.
fn non_finite_cell(cell: &str) -> bool {
    matches!(
        cell,
        "NaN" | "-NaN" | "inf" | "-inf" | "Infinity" | "-Infinity"
    )
}

/// Writes a header row and data rows to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer; returns
/// `InvalidInput` when any data cell is a non-finite float rendering
/// (`NaN`, `inf`, `-inf`).
pub fn write_rows<W: Write>(
    mut w: W,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    let head: Vec<String> = header.iter().map(|h| escape(h)).collect();
    writeln!(w, "{}", head.join(","))?;
    for row in rows {
        if let Some(bad) = row.iter().find(|c| non_finite_cell(c)) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("refusing to write non-finite CSV cell {bad:?}"),
            ));
        }
        let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes a header row and data rows to a file, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_file(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = BufWriter::new(File::create(path)?);
    write_rows(file, header, rows)
}

/// Writes multiple series that share an x axis as one CSV file:
/// `x, <series 1 name>, <series 2 name>, …`.
///
/// Series are aligned by position, not by x value; all series must have
/// been sampled on the same schedule. Shorter series leave empty cells.
///
/// # Errors
///
/// Propagates I/O errors; returns `InvalidInput` when no series is given
/// or when any series contains a non-finite point.
pub fn write_series_file(
    path: impl AsRef<Path>,
    x_name: &str,
    series: &[&Series],
) -> io::Result<()> {
    if series.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least one series",
        ));
    }
    for s in series {
        if let Some(&(x, y)) = s
            .points
            .iter()
            .find(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("series {:?} has non-finite point ({x}, {y})", s.name),
            ));
        }
    }
    let mut header: Vec<&str> = vec![x_name];
    header.extend(series.iter().map(|s| s.name.as_str()));
    let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let rows = (0..longest).map(|i| {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|&(x, _)| x))
            .unwrap_or(i as f64);
        let mut row = Vec::with_capacity(series.len() + 1);
        row.push(format!("{x}"));
        for s in series {
            row.push(
                s.points
                    .get(i)
                    .map(|&(_, y)| format!("{y}"))
                    .unwrap_or_default(),
            );
        }
        row
    });
    write_file(path, &header, rows)
}

/// Reads a file written by [`write_series_file`] back into one [`Series`]
/// per data column. Empty cells (from length-mismatched series) are
/// skipped.
///
/// # Errors
///
/// Propagates I/O errors; returns `InvalidData` for files without a
/// header or with non-numeric cells.
pub fn read_series_file(path: impl AsRef<Path>) -> io::Result<Vec<Series>> {
    let file = BufReader::new(File::open(path)?);
    let mut lines = file.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty series file"))??;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "series file needs an x column and at least one series",
        ));
    }
    let mut series: Vec<Series> = names[1..].iter().map(|&name| Series::new(name)).collect();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad series row: {line:?}"),
            )
        };
        let x: f64 = cells.first().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        for (i, s) in series.iter_mut().enumerate() {
            match cells.get(i + 1) {
                Some(&"") | None => continue,
                Some(cell) => {
                    let y: f64 = cell.parse().map_err(|_| bad())?;
                    s.push(x, y);
                }
            }
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_simple_table() {
        let mut buf = Vec::new();
        write_rows(
            &mut buf,
            &["a", "b"],
            vec![
                vec!["1".to_string(), "2".to_string()],
                vec!["3".to_string(), "4".to_string()],
            ],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn escapes_problem_fields() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn series_file_round_trip() {
        let dir = std::env::temp_dir().join("adc-metrics-test");
        let path = dir.join("series.csv");
        let mut a = Series::new("adc");
        a.push(5000.0, 0.1);
        a.push(10000.0, 0.3);
        let mut b = Series::new("hash");
        b.push(5000.0, 0.2);
        write_series_file(&path, "requests", &[&a, &b]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "requests,adc,hash");
        assert_eq!(lines[1], "5000,0.1,0.2");
        assert_eq!(lines[2], "10000,0.3,");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_file_read_round_trip() {
        let dir = std::env::temp_dir().join("adc-metrics-read-test");
        let path = dir.join("rt.csv");
        let mut a = Series::new("adc");
        a.push(1.0, 0.25);
        a.push(2.0, 0.5);
        let mut b = Series::new("hash");
        b.push(1.0, 0.75);
        write_series_file(&path, "x", &[&a, &b]).unwrap();
        let back = read_series_file(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b); // the short column's empty cell is skipped
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let dir = std::env::temp_dir().join("adc-metrics-badread-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "x,adc\n1.0,banana\n").unwrap();
        assert!(read_series_file(&path).is_err());
        std::fs::write(&path, "justonecolumn\n").unwrap();
        assert!(read_series_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_series_list_is_an_error() {
        let err = write_series_file("/tmp/never.csv", "x", &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn write_rows_rejects_non_finite_cells() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut buf = Vec::new();
            let err = write_rows(
                &mut buf,
                &["a", "b"],
                vec![vec!["1".to_string(), format!("{bad}")]],
            )
            .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "value {bad}");
        }
        // Finite rows keep working.
        let mut buf = Vec::new();
        write_rows(&mut buf, &["a"], vec![vec!["inflation".to_string()]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a\ninflation\n");
    }

    #[test]
    fn write_series_file_rejects_non_finite_points() {
        let dir =
            std::env::temp_dir().join(format!("adc-metrics-nonfinite-{}", std::process::id()));
        let path = dir.join("bad.csv");
        let mut s = Series::new("adc");
        s.push(1.0, f64::NAN);
        let err = write_series_file(&path, "x", &[&s]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let mut s = Series::new("adc");
        s.push(f64::INFINITY, 0.5);
        let err = write_series_file(&path, "x", &[&s]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(!path.exists(), "no partial file on rejection");
        std::fs::remove_dir_all(&dir).ok();
    }
}
