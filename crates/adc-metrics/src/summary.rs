//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max over a stream of observations.
///
/// # Examples
///
/// ```
/// use adc_metrics::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), Some(5.0));
/// assert_eq!(s.std_dev(), Some(2.138089935299395));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sample variance (n − 1 denominator), or `None` with fewer than two
    /// observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [5.0].into_iter().collect();
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: Summary = data.iter().copied().collect();
        let mut a: Summary = data[..37].iter().copied().collect();
        let b: Summary = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!((a.mean().unwrap() - sequential.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - sequential.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
    }
}
