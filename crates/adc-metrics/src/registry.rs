//! Per-proxy metric registry with wire-scrapable exposition.
//!
//! Families of [`Counter`]s, [`Gauge`]s and [`Log2Histogram`]s keyed by
//! `(metric name, proxy id)`. Everything about the registry is
//! deterministic: storage is ordered ([`std::collections::BTreeMap`]),
//! iteration and [`Registry::snapshot`] walk keys in sorted order, and
//! [`Registry::merge`] is a pure element-wise fold — so per-proxy
//! histograms collected on parallel sweep shards merge *exactly*, unlike
//! averaging quantile estimates after the fact.
//!
//! The log2 bucket layout is the key to exact merging: every histogram
//! has the same 65 buckets (`0`, then `[2^(k-1), 2^k)` for `k = 1..=64`),
//! so merging is element-wise addition and `merge`-then-`quantile`
//! equals record-everything-then-`quantile` bit for bit.
//!
//! [`RegistrySnapshot::to_prometheus`] renders the classic Prometheus
//! text exposition format (counters, gauges, and cumulative `le`-labelled
//! histogram series); [`validate_prometheus`] is the matching minimal
//! format checker used by the integration tests and the scrape tooling.
//!
//! # Examples
//!
//! ```
//! use adc_metrics::{Log2Histogram, Registry};
//!
//! let mut shard_a = Registry::new();
//! let mut shard_b = Registry::new();
//! shard_a.counter_add("adc_local_hits_total", 0, 3);
//! shard_b.counter_add("adc_local_hits_total", 0, 4);
//! shard_a.histogram_record("adc_hops", 0, 2);
//! shard_b.histogram_record("adc_hops", 0, 9);
//! shard_a.merge(&shard_b);
//! assert_eq!(shard_a.counter("adc_local_hits_total", 0), 7);
//! assert_eq!(shard_a.histogram("adc_hops", 0).unwrap().count(), 2);
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Proxy-id slot for cluster-wide (not per-proxy) metric values; rendered
/// as `proxy="all"` by the Prometheus exposition.
pub const CLUSTER: u32 = u32::MAX;

/// Number of buckets in a [`Log2Histogram`]: one zero bucket plus one per
/// power of two up to `2^63`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-shape base-2 exponential histogram over `u64` observations.
///
/// Bucket `0` counts exact zeros; bucket `k` (for `k >= 1`) counts values
/// in `[2^(k-1), 2^k)`. Because every instance shares the same bucket
/// edges, [`Log2Histogram::merge`] is element-wise addition and is exact:
/// merging shard histograms then taking a quantile equals recording the
/// interleaved stream into one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: vec![0; LOG2_BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// Bucket index of `value`: 0 for 0, else `1 + floor(log2(value))`.
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // leading_zeros <= 63 for value >= 1, so this is in 1..=64.
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        // Vec always has LOG2_BUCKETS entries and bucket_of is <= 64.
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations in bucket `k` (see the type docs for edges).
    pub fn bucket_count(&self, k: usize) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Inclusive upper edge of bucket `k`: 0, 1, 3, 7, … `u64::MAX`.
    pub fn bucket_upper_edge(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Adds every observation of `other` into `self`. Exact: the result
    /// is identical to recording both streams into one histogram.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Approximate quantile (0.0–1.0), reported as the upper edge of the
    /// bucket holding the target rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil().max(1.0)) as u64; // <= total: exact in f64
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(Self::bucket_upper_edge(k));
            }
        }
        Some(u64::MAX)
    }

    /// Iterates `(bucket_upper_edge, count)` pairs in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (Self::bucket_upper_edge(k), c))
    }
}

/// Key of one metric value: family name plus proxy id.
pub type MetricKey = (&'static str, u32);

/// Deterministic families of counters, gauges and log2 histograms keyed
/// by `(metric, proxy_id)`.
///
/// Names are `&'static str` so hot-path updates never allocate; sorted
/// iteration falls out of the ordered map. See the module docs for the
/// merge guarantees.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histograms: BTreeMap<MetricKey, Log2Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `(metric, proxy)`, creating it at zero.
    pub fn counter_add(&mut self, metric: &'static str, proxy: u32, delta: u64) {
        *self.counters.entry((metric, proxy)).or_insert(0) += delta;
    }

    /// Current value of the counter `(metric, proxy)` (0 when absent).
    pub fn counter(&self, metric: &'static str, proxy: u32) -> u64 {
        self.counters.get(&(metric, proxy)).copied().unwrap_or(0)
    }

    /// Sets the gauge `(metric, proxy)`.
    pub fn gauge_set(&mut self, metric: &'static str, proxy: u32, value: i64) {
        self.gauges.insert((metric, proxy), value);
    }

    /// Adds `delta` (possibly negative) to the gauge `(metric, proxy)`,
    /// creating it at zero.
    pub fn gauge_add(&mut self, metric: &'static str, proxy: u32, delta: i64) {
        *self.gauges.entry((metric, proxy)).or_insert(0) += delta;
    }

    /// Current value of the gauge `(metric, proxy)` (0 when absent).
    pub fn gauge(&self, metric: &'static str, proxy: u32) -> i64 {
        self.gauges.get(&(metric, proxy)).copied().unwrap_or(0)
    }

    /// Records `value` into the histogram `(metric, proxy)`, creating it
    /// empty.
    pub fn histogram_record(&mut self, metric: &'static str, proxy: u32, value: u64) {
        self.histograms
            .entry((metric, proxy))
            .or_default()
            .record(value);
    }

    /// The histogram `(metric, proxy)`, if any value was recorded.
    pub fn histogram(&self, metric: &'static str, proxy: u32) -> Option<&Log2Histogram> {
        self.histograms.get(&(metric, proxy))
    }

    /// Iterates counters in sorted `(metric, proxy)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u32, u64)> + '_ {
        self.counters.iter().map(|(&(m, p), &v)| (m, p, v))
    }

    /// Iterates gauges in sorted `(metric, proxy)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u32, i64)> + '_ {
        self.gauges.iter().map(|(&(m, p), &v)| (m, p, v))
    }

    /// Iterates histograms in sorted `(metric, proxy)` order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, u32, &Log2Histogram)> + '_ {
        self.histograms.iter().map(|(&(m, p), h)| (m, p, h))
    }

    /// Proxy ids (excluding [`CLUSTER`]) that appear in any family, in
    /// ascending order.
    pub fn proxies(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|&(_, p)| p)
            .filter(|&p| p != CLUSTER)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Folds every family of `other` into `self`: counters add, gauges
    /// add, histograms merge element-wise (exactly).
    pub fn merge(&mut self, other: &Registry) {
        for (&(m, p), &v) in &other.counters {
            *self.counters.entry((m, p)).or_insert(0) += v;
        }
        for (&(m, p), &v) in &other.gauges {
            *self.gauges.entry((m, p)).or_insert(0) += v;
        }
        for (&(m, p), h) in &other.histograms {
            self.histograms.entry((m, p)).or_default().merge(h);
        }
    }

    /// Folds an ordered sequence of registries into one, by repeated
    /// [`Registry::merge`].
    ///
    /// Shard-merge entry point: each simulation shard accumulates its own
    /// registry, and the coordinator folds them after the run. Because
    /// `merge` is element-wise addition over identically-shaped families,
    /// the fold is exact and independent of the shard partitioning — the
    /// merged registry for `shards=N` is byte-identical to the `shards=1`
    /// registry for the same event stream.
    pub fn merge_all<'a>(parts: impl IntoIterator<Item = &'a Registry>) -> Registry {
        let mut merged = Registry::new();
        for part in parts {
            merged.merge(part);
        }
        merged
    }

    /// An owned, sorted, render-ready copy of every family.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&(m, p), &v)| (m.to_string(), p, v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&(m, p), &v)| (m.to_string(), p, v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&(m, p), h)| (m.to_string(), p, h.clone()))
                .collect(),
        }
    }
}

/// An owned snapshot of a [`Registry`], sorted by `(metric, proxy)` —
/// what crosses thread/process boundaries and what the exposition
/// renders.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// `(metric, proxy, value)` counter triples, sorted.
    pub counters: Vec<(String, u32, u64)>,
    /// `(metric, proxy, value)` gauge triples, sorted.
    pub gauges: Vec<(String, u32, i64)>,
    /// `(metric, proxy, histogram)` triples, sorted.
    pub histograms: Vec<(String, u32, Log2Histogram)>,
}

/// Writes the `proxy` label, mapping the [`CLUSTER`] slot to `"all"`.
fn push_proxy_label(out: &mut String, proxy: u32) {
    out.push_str("{proxy=\"");
    if proxy == CLUSTER {
        out.push_str("all");
    } else {
        out.push_str(&proxy.to_string());
    }
    out.push_str("\"}");
}

/// Writes `le`-labelled histogram sample lines for one proxy.
fn push_histogram_lines(out: &mut String, metric: &str, proxy: u32, h: &Log2Histogram) {
    let proxy_label = if proxy == CLUSTER {
        "all".to_string()
    } else {
        proxy.to_string()
    };
    let mut cum = 0u64;
    for (edge, count) in h.iter() {
        if count == 0 {
            continue; // sparse: empty buckets carry no information
        }
        cum += count;
        out.push_str(metric);
        out.push_str("_bucket{proxy=\"");
        out.push_str(&proxy_label);
        out.push_str("\",le=\"");
        out.push_str(&edge.to_string());
        out.push_str("\"} ");
        out.push_str(&cum.to_string());
        out.push('\n');
    }
    out.push_str(metric);
    out.push_str("_bucket{proxy=\"");
    out.push_str(&proxy_label);
    out.push_str("\",le=\"+Inf\"} ");
    out.push_str(&h.count().to_string());
    out.push('\n');
    out.push_str(metric);
    out.push_str("_sum{proxy=\"");
    out.push_str(&proxy_label);
    out.push_str("\"} ");
    out.push_str(&h.sum().to_string());
    out.push('\n');
    out.push_str(metric);
    out.push_str("_count{proxy=\"");
    out.push_str(&proxy_label);
    out.push_str("\"} ");
    out.push_str(&h.count().to_string());
    out.push('\n');
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per family, then one sample
    /// line per `(metric, proxy)` value; histograms render the classic
    /// cumulative `_bucket{le=...}` / `_sum` / `_count` series.
    ///
    /// Output is deterministic: families and samples appear in sorted
    /// `(metric, proxy)` order, so two same-seed runs render identical
    /// text.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (metric, proxy, value) in &self.counters {
            if metric != last_family {
                out.push_str("# TYPE ");
                out.push_str(metric);
                out.push_str(" counter\n");
                last_family = metric;
            }
            out.push_str(metric);
            push_proxy_label(&mut out, *proxy);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        let mut last_family = "";
        for (metric, proxy, value) in &self.gauges {
            if metric != last_family {
                out.push_str("# TYPE ");
                out.push_str(metric);
                out.push_str(" gauge\n");
                last_family = metric;
            }
            out.push_str(metric);
            push_proxy_label(&mut out, *proxy);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        let mut last_family = "";
        for (metric, proxy, h) in &self.histograms {
            if metric != last_family {
                out.push_str("# TYPE ");
                out.push_str(metric);
                out.push_str(" histogram\n");
                last_family = metric;
            }
            push_histogram_lines(&mut out, metric, *proxy, h);
        }
        out
    }
}

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Checks one `label="value",...` block (without the braces).
fn check_labels(labels: &str) -> Result<(), String> {
    for part in labels.split(',') {
        let Some((name, value)) = part.split_once('=') else {
            return Err(format!("label without '=': {part:?}"));
        };
        if !valid_metric_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
            return Err(format!("label value not quoted: {value:?}"));
        }
    }
    Ok(())
}

/// A minimal Prometheus text-format checker: every non-comment line must
/// be `name[{label="value",...}] <number>`, comment lines must be
/// `# TYPE`/`# HELP`/plain comments, and `# TYPE` lines must name a valid
/// metric and one of the known types.
///
/// This is the round-trip half of [`RegistrySnapshot::to_prometheus`]:
/// everything the renderer emits validates, and the scrape/CI tooling
/// runs untrusted text through it before use.
///
/// # Errors
///
/// Returns `Err(description)` naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut words = rest.split_whitespace();
                let name = words.next().unwrap_or("");
                let kind = words.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
            }
            continue; // HELP and plain comments are free-form
        }
        // Sample line: name, optional {labels}, a space, a number.
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value: {line:?}"))?;
        let value = value.trim();
        let numeric = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !numeric {
            return Err(format!("line {n}: non-numeric value {value:?}"));
        }
        let name = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unclosed label block: {line:?}"))?;
                check_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
                name
            }
            None => name_and_labels,
        };
        if !valid_metric_name(name.trim()) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_land_on_power_of_two_edges() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 2); // 4, 7
        assert_eq!(h.bucket_count(4), 1); // 8
        assert_eq!(h.bucket_count(10), 1); // 1023
        assert_eq!(h.bucket_count(11), 1); // 1024
        assert_eq!(h.bucket_count(64), 1); // u64::MAX
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn log2_quantiles_report_bucket_upper_edges() {
        let mut h = Log2Histogram::new();
        for _ in 0..9 {
            h.record(3);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(Log2Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn log2_merge_is_exact_and_commutative() {
        let stream: Vec<u64> = (0..200).map(|i| i * i % 4099).collect();
        let mut whole = Log2Histogram::new();
        let mut left = Log2Histogram::new();
        let mut right = Log2Histogram::new();
        for (i, &v) in stream.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, whole);
        assert_eq!(rl, whole);
    }

    #[test]
    fn registry_families_are_sorted_and_mergeable() {
        let mut r = Registry::new();
        r.counter_add("b_total", 1, 2);
        r.counter_add("a_total", 3, 1);
        r.counter_add("a_total", 0, 5);
        r.gauge_set("occ", 0, 7);
        r.gauge_add("occ", 0, -2);
        r.histogram_record("hops", 2, 4);
        let order: Vec<(&str, u32)> = r.counters().map(|(m, p, _)| (m, p)).collect();
        assert_eq!(order, vec![("a_total", 0), ("a_total", 3), ("b_total", 1)]);
        assert_eq!(r.gauge("occ", 0), 5);
        assert_eq!(r.proxies(), vec![0, 1, 2, 3]);

        let mut other = Registry::new();
        other.counter_add("a_total", 0, 1);
        other.gauge_add("occ", 0, 1);
        other.histogram_record("hops", 2, 4);
        r.merge(&other);
        assert_eq!(r.counter("a_total", 0), 6);
        assert_eq!(r.gauge("occ", 0), 6);
        assert_eq!(r.histogram("hops", 2).map(Log2Histogram::count), Some(2));
    }

    #[test]
    fn merge_all_is_partition_invariant() {
        // Record one stream whole, and the same stream split across 3
        // "shards"; the folded registries must be identical.
        let mut whole = Registry::new();
        let mut shards = [Registry::new(), Registry::new(), Registry::new()];
        for i in 0..300u64 {
            let proxy = (i % 5) as u32; // 5 proxies round-robin
            whole.counter_add("adc_local_hits_total", proxy, 1);
            whole.histogram_record("adc_hops", proxy, i % 9);
            whole.gauge_add("adc_cached_objects", proxy, 1);
            let s = &mut shards[(i % 3) as usize]; // shard by index
            s.counter_add("adc_local_hits_total", proxy, 1);
            s.histogram_record("adc_hops", proxy, i % 9);
            s.gauge_add("adc_cached_objects", proxy, 1);
        }
        let merged = Registry::merge_all(shards.iter());
        assert_eq!(merged, whole);
        assert_eq!(
            merged.snapshot().to_prometheus(),
            whole.snapshot().to_prometheus()
        );
        // Folding a single registry is the identity.
        assert_eq!(Registry::merge_all([&whole]), whole);
        // Folding nothing yields an empty registry.
        assert_eq!(Registry::merge_all([]), Registry::new());
    }

    #[test]
    fn snapshot_renders_valid_prometheus() {
        let mut r = Registry::new();
        r.counter_add("adc_local_hits_total", 0, 3);
        r.counter_add("adc_local_hits_total", 1, 4);
        r.counter_add("adc_requests_injected_total", CLUSTER, 7);
        r.gauge_set("adc_cached_objects", 0, 12);
        r.histogram_record("adc_hops", 0, 2);
        r.histogram_record("adc_hops", 0, 5);
        let text = r.snapshot().to_prometheus();
        validate_prometheus(&text).expect("renderer output must validate");
        assert!(text.contains("# TYPE adc_local_hits_total counter"));
        assert!(text.contains("adc_local_hits_total{proxy=\"1\"} 4"));
        assert!(text.contains("adc_requests_injected_total{proxy=\"all\"} 7"));
        assert!(text.contains("adc_hops_bucket{proxy=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("adc_hops_sum{proxy=\"0\"} 7"));
        assert!(text.contains("adc_hops_count{proxy=\"0\"} 2"));
        // One TYPE line per family, not per sample.
        assert_eq!(text.matches("# TYPE adc_local_hits_total").count(), 1);
    }

    #[test]
    fn snapshot_rendering_is_deterministic() {
        let build = |order_flip: bool| {
            let mut r = Registry::new();
            let (a, b) = if order_flip { (1, 0) } else { (0, 1) };
            r.counter_add("x_total", a, 1);
            r.counter_add("x_total", b, 2);
            r.histogram_record("h", a, 3);
            r.histogram_record("h", b, 3);
            r.snapshot().to_prometheus()
        };
        // Same content inserted in a different order renders identically
        // except for the per-key values, which follow the key, not the
        // insertion order.
        let x = build(false);
        let y = build(true);
        assert_eq!(x.matches("x_total{proxy=\"0\"}").count(), 1);
        assert_eq!(y.matches("x_total{proxy=\"0\"}").count(), 1);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        assert!(validate_prometheus("ok_metric notanumber\n").is_err());
        assert!(validate_prometheus("bad-name 1\n").is_err());
        assert!(validate_prometheus("m{l=unquoted} 1\n").is_err());
        assert!(validate_prometheus("m{l=\"v\" 1\n").is_err());
        assert!(validate_prometheus("# TYPE m frobnicator\nm 1\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm{p=\"0\"} 1\n").is_ok());
        assert!(validate_prometheus("m_bucket{le=\"+Inf\"} 4\n").is_ok());
    }
}
